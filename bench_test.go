// Benchmarks regenerating every table and figure of the DISTINCT paper's
// evaluation (one benchmark per experiment), plus micro-benchmarks of the
// pipeline stages and ablation benchmarks of the design choices.
//
// Quality benchmarks report f-measure / precision / recall / accuracy via
// b.ReportMetric next to the usual ns/op, so a single `go test -bench=.`
// run shows both the speed and the reproduced result shape.
package distinct_test

import (
	"math/rand"
	"sync"
	"testing"

	"distinct"
	"distinct/internal/cluster"
	"distinct/internal/core"
	"distinct/internal/dblp"
	"distinct/internal/experiments"
	"distinct/internal/prop"
	"distinct/internal/reldb"
	"distinct/internal/sim"
	"distinct/internal/svm"
	"distinct/internal/trainset"
)

// The benchmark world: the full default configuration whose ambiguous names
// carry the exact Table 1 profile. Generated once and shared; harnesses are
// rebuilt per benchmark so each measures its own pipeline stages.
var (
	benchWorldOnce sync.Once
	benchWorldVal  *dblp.World
)

func benchWorld(b *testing.B) *dblp.World {
	b.Helper()
	benchWorldOnce.Do(func() {
		w, err := dblp.Generate(dblp.DefaultConfig())
		if err != nil {
			panic(err)
		}
		benchWorldVal = w
	})
	return benchWorldVal
}

func benchHarness(b *testing.B) *experiments.Harness {
	b.Helper()
	h, err := experiments.NewHarnessWorld(benchWorld(b), experiments.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return h
}

// BenchmarkTable1NamesDataset regenerates the Table 1 dataset: generating
// the world with the injected ambiguous-name profile and tabulating it.
func BenchmarkTable1NamesDataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := dblp.Generate(dblp.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		h, err := experiments.NewHarnessWorld(w, experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		rows := h.Table1()
		if len(rows) != 10 {
			b.Fatalf("Table 1 has %d rows", len(rows))
		}
	}
}

// BenchmarkTable2Accuracy reproduces Table 2: the full DISTINCT pipeline
// (training + clustering all ten ambiguous names) at fixed min-sim.
func BenchmarkTable2Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness(b)
		res, err := h.Table2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Average.F1, "f-measure")
		b.ReportMetric(res.Average.Precision, "precision")
		b.ReportMetric(res.Average.Recall, "recall")
	}
}

// BenchmarkFigure4Variants reproduces Figure 4: six variants, with min-sim
// tuned per non-DISTINCT variant over the default grid.
func BenchmarkFigure4Variants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness(b)
		rows, err := h.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].F1, "DISTINCT-f")
		b.ReportMetric(rows[4].F1, "unsup-resem-f")
		b.ReportMetric(rows[5].F1, "unsup-walk-f")
	}
}

// BenchmarkFigure5WeiWang reproduces Figure 5: grouping the 143 Wei Wang
// references and annotating mistakes against ground truth.
func BenchmarkFigure5WeiWang(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness(b)
		res, err := h.Figure5("Wei Wang")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Metrics.F1, "f-measure")
		b.ReportMetric(float64(len(res.Clusters)), "clusters")
	}
}

// BenchmarkTrainingPipeline measures the stage the paper times at 62.1 s on
// full DBLP: automatic training-set construction, feature extraction and
// SVM training.
func BenchmarkTrainingPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness(b)
		rep, err := h.Train()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rep.ResemAccuracy, "svm-accuracy")
	}
}

// BenchmarkAblationClusterMeasures runs the beyond-the-paper ablation of
// the cluster similarity measure.
func BenchmarkAblationClusterMeasures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := benchHarness(b)
		rows, err := h.Ablation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].F1, "geometric-f")
		b.ReportMetric(rows[1].F1, "arithmetic-f")
	}
}

// --- micro-benchmarks of the pipeline stages ---

func benchEngine(b *testing.B) (*core.Engine, *dblp.World) {
	b.Helper()
	w := benchWorld(b)
	e, err := core.NewEngine(w.DB, core.Config{
		RefRelation: dblp.ReferenceRelation,
		RefAttr:     dblp.ReferenceAttr,
		SkipExpand:  []string{dblp.TitleAttr},
		Supervised:  true,
		Train: trainset.Options{
			NumPositive: 1000, NumNegative: 1000,
			Exclude: w.AmbiguousNames(),
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	return e, w
}

// BenchmarkAttributeExpansion measures Section 2.1's rewrite of attribute
// values into tuples on the full world.
func BenchmarkAttributeExpansion(b *testing.B) {
	w := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := reldb.ExpandAttributes(w.DB, dblp.TitleAttr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPropagation measures probability propagation (Section 2.2) for
// one reference along every join path.
func BenchmarkPropagation(b *testing.B) {
	e, _ := benchEngine(b)
	refs := e.RefsForName("Wei Wang")
	paths := e.Paths()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := refs[i%len(refs)]
		for _, p := range paths {
			prop.Propagate(e.DB(), r, p)
		}
	}
}

// BenchmarkSetResemblance measures the weighted Jaccard between two cached
// neighborhoods (Definition 2).
func BenchmarkSetResemblance(b *testing.B) {
	e, _ := benchEngine(b)
	refs := e.RefsForName("Wei Wang")
	ext := sim.NewExtractor(e.DB(), e.Paths())
	n1 := ext.Neighborhoods(refs[0])
	n2 := ext.Neighborhoods(refs[1])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := range n1 {
			sim.Resemblance(n1[p], n2[p])
		}
	}
}

// BenchmarkRandomWalk measures the composed walk probability (Section 2.4).
func BenchmarkRandomWalk(b *testing.B) {
	e, _ := benchEngine(b)
	refs := e.RefsForName("Wei Wang")
	ext := sim.NewExtractor(e.DB(), e.Paths())
	n1 := ext.Neighborhoods(refs[0])
	n2 := ext.Neighborhoods(refs[1])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := range n1 {
			sim.SymWalkProb(n1[p], n2[p])
		}
	}
}

// BenchmarkSimilarityMatrix measures the all-pairs per-path similarity
// computation for the hardest name (143 references).
func BenchmarkSimilarityMatrix(b *testing.B) {
	e, _ := benchEngine(b)
	refs := e.RefsForName("Wei Wang")
	e.PathSimilarities(refs) // warm the neighborhood cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.PathSimilarities(refs)
	}
}

// BenchmarkClustering measures the agglomerative clustering (Section 4)
// with incremental similarity aggregation on the 143-reference name.
func BenchmarkClustering(b *testing.B) {
	e, _ := benchEngine(b)
	refs := e.RefsForName("Wei Wang")
	m := e.Similarities(refs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.Agglomerate(len(refs), m, cluster.Options{
			Measure: cluster.Combined, MinSim: core.DefaultMinSim,
		})
	}
}

// BenchmarkClusteringLarge is BenchmarkClustering at ~4x block size: a
// deterministic synthetic 572-reference block with planted groups (within-
// group similarities well above DefaultMinSim, cross-group well below),
// approximating the merge/prune mix of a large natural name. It sizes the
// flat-state engine's linear alive scans, row arena growth, and heap
// compaction at a scale the generated worlds don't reach.
func BenchmarkClusteringLarge(b *testing.B) {
	const n, groups = 572, 8
	rng := rand.New(rand.NewSource(7))
	m := cluster.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var r float64
			if i%groups == j%groups {
				r = 0.05 + 0.4*rng.Float64()
			} else {
				r = 0.002 * rng.Float64()
			}
			m.R[i][j], m.R[j][i] = r, r
			m.W[i][j] = r * (0.5 + rng.Float64())
			m.W[j][i] = r * (0.5 + rng.Float64())
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cluster.Agglomerate(n, m, cluster.Options{
			Measure: cluster.Combined, MinSim: core.DefaultMinSim,
		})
	}
}

// BenchmarkSVMTrainDCD and BenchmarkSVMTrainPegasos compare the two solvers
// on the real training features (solver ablation).
func benchSVMExamples(b *testing.B) []svm.Example {
	b.Helper()
	e, w := benchEngine(b)
	ts, err := trainset.Build(e.DB(), dblp.ReferenceRelation, dblp.ReferenceAttr, trainset.Options{
		NumPositive: 500, NumNegative: 500, Exclude: w.AmbiguousNames(),
	})
	if err != nil {
		b.Fatal(err)
	}
	ext := sim.NewExtractor(e.DB(), e.Paths())
	ex := make([]svm.Example, len(ts.Pairs))
	for i, p := range ts.Pairs {
		ex[i] = svm.Example{X: ext.ResemVector(p.R1, p.R2), Y: p.Label}
	}
	return svm.FitScaler(ex).Transform(ex)
}

func BenchmarkSVMTrainDCD(b *testing.B) {
	ex := benchSVMExamples(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svm.TrainDCD(ex, svm.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSVMTrainPegasos(b *testing.B) {
	ex := benchSVMExamples(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svm.TrainPegasos(ex, svm.Options{MaxIter: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainingSetConstruction measures Section 3's automatic rare-name
// training-set construction alone.
func BenchmarkTrainingSetConstruction(b *testing.B) {
	e, w := benchEngine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trainset.Build(e.DB(), dblp.ReferenceRelation, dblp.ReferenceAttr, trainset.Options{
			NumPositive: 1000, NumNegative: 1000, Exclude: w.AmbiguousNames(),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorldGeneration measures the synthetic DBLP substrate itself.
func BenchmarkWorldGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := dblp.Generate(dblp.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathLengthAblation reports DISTINCT's f-measure as the join-path
// length cap varies — the coverage/noise trade-off DESIGN.md calls out.
func BenchmarkPathLengthAblation(b *testing.B) {
	for _, maxLen := range []int{2, 3, 4} {
		b.Run(map[int]string{2: "len2", 3: "len3", 4: "len4"}[maxLen], func(b *testing.B) {
			w := benchWorld(b)
			for i := 0; i < b.N; i++ {
				e, err := core.NewEngine(w.DB, core.Config{
					RefRelation: dblp.ReferenceRelation,
					RefAttr:     dblp.ReferenceAttr,
					SkipExpand:  []string{dblp.TitleAttr},
					Supervised:  true,
					MaxPathLen:  maxLen,
					Train: trainset.Options{
						NumPositive: 500, NumNegative: 500,
						Exclude: w.AmbiguousNames(),
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := e.Train(); err != nil {
					b.Fatal(err)
				}
				var sumF float64
				names := w.AmbiguousNames()
				for _, name := range names {
					pred, err := e.DisambiguateName(name)
					if err != nil {
						b.Fatal(err)
					}
					var gold [][]reldb.TupleID
					for _, c := range w.GoldClusters(name) {
						gold = append(gold, e.MapRefs(c))
					}
					m, err := scorePartition(pred, gold)
					if err != nil {
						b.Fatal(err)
					}
					sumF += m
				}
				b.ReportMetric(sumF/float64(len(names)), "avg-f")
			}
		})
	}
}

// scorePartition returns the pairwise f-measure of pred against gold.
func scorePartition(pred, gold [][]reldb.TupleID) (float64, error) {
	m, err := distinct.Score(pred, gold)
	if err != nil {
		return 0, err
	}
	return m.F1, nil
}
