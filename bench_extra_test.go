// Benchmarks of the library features beyond the paper: parallel feature
// extraction, whole-database batch disambiguation, min-sim auto-tuning,
// merge profiling, and the DBLP XML loader.
package distinct_test

import (
	"strings"
	"testing"

	"distinct/internal/cluster"
	"distinct/internal/core"
	"distinct/internal/dblp"
	"distinct/internal/dblpxml"
	"distinct/internal/obs"
	"distinct/internal/obs/trace"
	"distinct/internal/trainset"
)

// trainedBenchEngine builds and trains an engine on the shared benchmark
// world with the given worker count.
func trainedBenchEngine(b *testing.B, workers int) *core.Engine {
	b.Helper()
	w := benchWorld(b)
	e, err := core.NewEngine(w.DB, core.Config{
		RefRelation: dblp.ReferenceRelation,
		RefAttr:     dblp.ReferenceAttr,
		SkipExpand:  []string{dblp.TitleAttr},
		Supervised:  true,
		Workers:     workers,
		Train: trainset.Options{
			NumPositive: 500, NumNegative: 500,
			Exclude: w.AmbiguousNames(),
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Train(); err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkFeatureExtractionWorkers measures the parallel speedup of the
// dominant pipeline stage (per-path similarity matrices for the 143-ref
// name). The speedup tracks the machine's core count; on a single-core
// host the variants only differ by goroutine overhead.
func BenchmarkFeatureExtractionWorkers(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "w1", 4: "w4"}[workers], func(b *testing.B) {
			w := benchWorld(b)
			e, err := core.NewEngine(w.DB, core.Config{
				RefRelation: dblp.ReferenceRelation,
				RefAttr:     dblp.ReferenceAttr,
				SkipExpand:  []string{dblp.TitleAttr},
				Workers:     workers,
			})
			if err != nil {
				b.Fatal(err)
			}
			refs := e.RefsForName("Wei Wang")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.PathSimilarities(refs)
			}
		})
	}
}

// BenchmarkDisambiguateAll sweeps every name with 20+ references on a
// mid-sized world. (On the full benchmark world the sweep costs tens of
// seconds per op — common names like "James Smith" carry ~1000 references
// and the pairwise stage is quadratic — so this bench scales the world
// down instead of cutting coverage.)
func BenchmarkDisambiguateAll(b *testing.B) {
	cfg := dblp.DefaultConfig()
	cfg.Communities = 6
	cfg.AuthorsPerCommunity = 50
	w, err := dblp.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	e, err := core.NewEngine(w.DB, core.Config{
		RefRelation: dblp.ReferenceRelation,
		RefAttr:     dblp.ReferenceAttr,
		SkipExpand:  []string{dblp.TitleAttr},
		Supervised:  true,
		Train: trainset.Options{
			NumPositive: 300, NumNegative: 300,
			Exclude: w.AmbiguousNames(),
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Train(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.DisambiguateAll(20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.NamesExamined), "names")
		b.ReportMetric(float64(len(res.Split)), "split")
	}
}

// BenchmarkDisambiguateAllMetrics is BenchmarkDisambiguateAll with a live
// observability registry attached: the difference between the two is the
// full cost of instrumentation (atomic counters, stage spans, the per-name
// latency histogram) over the whole batch pipeline. Without a registry the
// instrumented call sites hit the nil fast path, so the plain benchmark
// doubles as the disabled-cost baseline.
func BenchmarkDisambiguateAllMetrics(b *testing.B) {
	cfg := dblp.DefaultConfig()
	cfg.Communities = 6
	cfg.AuthorsPerCommunity = 50
	w, err := dblp.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	reg := obs.NewRegistry()
	e, err := core.NewEngine(w.DB, core.Config{
		RefRelation: dblp.ReferenceRelation,
		RefAttr:     dblp.ReferenceAttr,
		SkipExpand:  []string{dblp.TitleAttr},
		Supervised:  true,
		Train: trainset.Options{
			NumPositive: 300, NumNegative: 300,
			Exclude: w.AmbiguousNames(),
		},
		Obs: reg,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Train(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.DisambiguateAll(20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.NamesExamined), "names")
		b.ReportMetric(float64(len(res.Split)), "split")
	}
}

// BenchmarkDisambiguateAllTrace is BenchmarkDisambiguateAll with a live
// trace recording spans, merge events, and 1/64 sampled pair provenance —
// the difference against the plain benchmark is the full tracing overhead.
// A fresh trace per iteration keeps the span tree from growing across
// iterations, which would make later iterations pay for earlier ones.
func BenchmarkDisambiguateAllTrace(b *testing.B) {
	cfg := dblp.DefaultConfig()
	cfg.Communities = 6
	cfg.AuthorsPerCommunity = 50
	w, err := dblp.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	e, err := core.NewEngine(w.DB, core.Config{
		RefRelation: dblp.ReferenceRelation,
		RefAttr:     dblp.ReferenceAttr,
		SkipExpand:  []string{dblp.TitleAttr},
		Supervised:  true,
		Train: trainset.Options{
			NumPositive: 300, NumNegative: 300,
			Exclude: w.AmbiguousNames(),
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Train(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := trace.New(trace.Options{SamplePairEvery: 64})
		e.SetTrace(tr)
		res, err := e.DisambiguateAll(20)
		if err != nil {
			b.Fatal(err)
		}
		tr.Finish()
		spans, events := tr.Counts()
		b.ReportMetric(float64(res.NamesExamined), "names")
		b.ReportMetric(float64(spans), "spans")
		b.ReportMetric(float64(events), "events")
	}
}

// BenchmarkBlocking compares clustering one heavily shared natural name
// with and without shared-neighbor blocking (results are identical; the
// blocked path skips the cross-component pairwise work).
func BenchmarkBlocking(b *testing.B) {
	e := trainedBenchEngine(b, 0)
	// A heavily shared natural name of moderate size (~300 references);
	// the very largest names form one connected component and take tens of
	// seconds per clustering, which would dominate the default bench run.
	nameRel := e.DB().Relation("Authors")
	bestName, bestDist := "", 1<<30
	for _, id := range nameRel.TupleIDs() {
		name := e.DB().Tuple(id).Val("author")
		n := len(e.RefsForName(name))
		d := n - 300
		if d < 0 {
			d = -d
		}
		if d < bestDist {
			bestName, bestDist = name, d
		}
	}
	refs := e.RefsForName(bestName)
	b.Logf("name %q with %d references", bestName, len(refs))
	e.Similarities(refs) // warm the neighborhood cache for both variants

	b.Run("blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.SetMinSim(core.DefaultMinSim)
			if got := e.DisambiguateRefs(refs); len(got) == 0 {
				b.Fatal("no groups")
			}
		}
	})
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := e.Similarities(refs)
			if got := core.ClusterMatrix(refs, m, cluster.Combined, core.DefaultMinSim); len(got) == 0 {
				b.Fatal("no groups")
			}
		}
	})
}

// BenchmarkTuneMinSim measures label-free threshold tuning.
func BenchmarkTuneMinSim(b *testing.B) {
	e := trainedBenchEngine(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.TuneMinSim(nil, 20, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.F1, "tuned-f")
	}
}

// BenchmarkMergeProfile measures the full dendrogram trace of the hardest
// name.
func BenchmarkMergeProfile(b *testing.B) {
	e := trainedBenchEngine(b, 0)
	refs := e.RefsForName("Wei Wang")
	e.Similarities(refs) // warm neighborhood cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := e.MergeProfile(refs); len(got) != len(refs)-1 {
			b.Fatalf("profile %d steps", len(got))
		}
	}
}

// BenchmarkDBLPXMLLoad measures the streaming XML loader on a synthetic
// 2000-record document.
func BenchmarkDBLPXMLLoad(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<?xml version=\"1.0\" encoding=\"ISO-8859-1\"?>\n<dblp>\n")
	for i := 0; i < 2000; i++ {
		key := string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		sb.WriteString("<inproceedings key=\"conf/x/")
		sb.WriteString(key)
		sb.WriteString(itoa(i))
		sb.WriteString("\"><author>Alice ")
		sb.WriteString(key)
		sb.WriteString("</author><author>Bob ")
		sb.WriteString(itoa(i % 97))
		sb.WriteString("</author><title>T.</title><booktitle>V")
		sb.WriteString(itoa(i % 13))
		sb.WriteString("</booktitle><year>")
		sb.WriteString(itoa(1990 + i%15))
		sb.WriteString("</year></inproceedings>\n")
	}
	sb.WriteString("</dblp>\n")
	doc := sb.String()
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := dblpxml.Load(strings.NewReader(doc), dblpxml.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if stats.Records != 2000 {
			b.Fatalf("records = %d", stats.Records)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
