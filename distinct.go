package distinct

import (
	"context"
	"io"

	"distinct/internal/cluster"
	"distinct/internal/core"
	"distinct/internal/eval"
	"distinct/internal/obs"
	"distinct/internal/obs/trace"
	"distinct/internal/reldb"
	"distinct/internal/serve"
	"distinct/internal/svm"
	"distinct/internal/trainset"
)

// Relational substrate. These aliases re-export the in-memory relational
// engine so library users can define schemas and load data without touching
// internal packages.
type (
	// Attribute describes one column: Key marks the primary key, FK names
	// the referenced relation for foreign keys.
	Attribute = reldb.Attribute
	// RelationSchema is one relation's name and ordered attributes.
	RelationSchema = reldb.RelationSchema
	// Schema is a set of relations with resolved foreign keys.
	Schema = reldb.Schema
	// Database is an in-memory relational database instance.
	Database = reldb.Database
	// TupleID identifies a tuple within one Database.
	TupleID = reldb.TupleID
	// JoinPath is a chain of foreign-key traversals; similarities are
	// computed per join path.
	JoinPath = reldb.JoinPath
)

// InvalidTuple is returned by lookups that find nothing.
const InvalidTuple = reldb.InvalidTuple

// NewRelationSchema builds and validates a relation schema.
func NewRelationSchema(name string, attrs ...Attribute) (*RelationSchema, error) {
	return reldb.NewRelationSchema(name, attrs...)
}

// MustRelationSchema is NewRelationSchema that panics on error.
func MustRelationSchema(name string, attrs ...Attribute) *RelationSchema {
	return reldb.MustRelationSchema(name, attrs...)
}

// NewSchema builds and validates a schema from relation schemas.
func NewSchema(relations ...*RelationSchema) (*Schema, error) {
	return reldb.NewSchema(relations...)
}

// MustSchema is NewSchema that panics on error.
func MustSchema(relations ...*RelationSchema) *Schema {
	return reldb.MustSchema(relations...)
}

// NewDatabase creates an empty database over the schema.
func NewDatabase(schema *Schema) *Database { return reldb.NewDatabase(schema) }

// Measure selects how cluster-pair similarity is computed.
type Measure = cluster.Measure

// Cluster similarity measures. Combined is DISTINCT's composite measure;
// the others give the paper's Figure 4 variants and ablations.
const (
	Combined           = cluster.Combined
	ResemblanceOnly    = cluster.ResemOnly
	RandomWalkOnly     = cluster.WalkOnly
	CombinedArithmetic = cluster.CombinedArithmetic
	SingleLink         = cluster.SingleLink
	CompleteLink       = cluster.CompleteLink
)

// DefaultMinSim is the default clustering threshold (the analogue of the
// paper's min-sim = 0.0005 under this implementation's normalised weights).
const DefaultMinSim = core.DefaultMinSim

// TrainOptions configures the automatic training-set construction.
type TrainOptions = trainset.Options

// SVMOptions configures the linear SVM solver.
type SVMOptions = svm.Options

// TrainReport summarises a training run: set sizes, per-path weights,
// training accuracies and stage timings.
type TrainReport = core.TrainReport

// Config configures an Engine. RefRelation and RefAttr are required; they
// locate the references to disambiguate (RefAttr must be a foreign key to
// the relation keyed by the shared names). The remaining fields default to
// the paper's configuration.
type Config struct {
	// RefRelation and RefAttr locate the references, e.g. Publish.author.
	RefRelation, RefAttr string
	// SkipExpand lists "Relation.attr" free-text attributes to exclude from
	// attribute-value expansion (e.g. paper titles).
	SkipExpand []string
	// MaxPathLen caps join-path length (default 4).
	MaxPathLen int
	// Unsupervised disables SVM weight learning; all join paths then weigh
	// equally. The zero value (supervised) is the full DISTINCT.
	Unsupervised bool
	// Measure is the cluster similarity measure (default Combined).
	Measure Measure
	// MinSim is the clustering stop threshold (default DefaultMinSim).
	MinSim float64
	// Train tunes the automatic training set (defaults follow the paper:
	// 1000 positive and 1000 negative pairs from rare names).
	Train TrainOptions
	// SVM tunes the solver (defaults: C=1, dual coordinate descent).
	SVM SVMOptions
	// Workers bounds the goroutines used for feature extraction, the
	// dominant cost (0 = GOMAXPROCS, 1 = sequential).
	Workers int
	// Metrics, when non-nil, collects per-stage spans and pipeline
	// counters for every operation on the engine (see NewMetrics). Nil —
	// the default — records nothing and costs nothing.
	Metrics *Registry
	// Trace, when non-nil, records decision-level provenance (see
	// NewTrace): a span tree mirroring the pipeline stages, one event per
	// clustering merge, learned path weights, and sampled pair
	// explanations. Nil — the default — records nothing and costs one nil
	// check per stage.
	Trace *Trace
}

// Registry is the observability registry: named atomic counters, gauges,
// fixed-bucket histograms, and per-stage span aggregates. Hand one to
// Config.Metrics, then read Registry.Snapshot, dump it with
// Registry.WriteFile, or serve it live with ServeMetrics.
type Registry = obs.Registry

// NewMetrics returns an empty observability registry.
func NewMetrics() *Registry { return obs.NewRegistry() }

// Trace records a hierarchical trace of one run: a tree of timed spans (one
// per pipeline stage, one per name in a batch sweep) with typed attributes,
// plus structured events — one per clustering merge, one per learned path
// weight, and optionally one per sampled reference pair. Hand one to
// Config.Trace, run the engine, then export with Trace.WriteChromeJSON
// (chrome://tracing / Perfetto), Trace.WriteJSON (self-describing tree, the
// input of cmd/tracereport), or render it directly with trace.WriteReport.
type Trace = trace.Trace

// NewTrace returns an enabled trace. samplePairEvery > 0 additionally
// records an Explain-style per-path breakdown for every Nth reference pair
// in the similarity stage (deterministic striding, no RNG); 0 disables pair
// sampling while keeping spans and merge events.
func NewTrace(samplePairEvery int) *Trace {
	return trace.New(trace.Options{SamplePairEvery: samplePairEvery})
}

// MetricsServer is a running observability HTTP server (see ServeMetrics).
type MetricsServer = obs.Server

// ServeMetrics starts an HTTP server on addr exposing the registry: JSON
// snapshots at /metrics, expvar-compatible output at /debug/vars, and the
// standard net/http/pprof profiling endpoints. Close the returned server
// when done.
func ServeMetrics(addr string, reg *Registry) (*MetricsServer, error) {
	return obs.Serve(addr, reg)
}

// Engine is a ready-to-use DISTINCT instance bound to one database.
type Engine struct {
	inner *core.Engine
}

// Open prepares an engine over the database: it expands attribute values
// into tuples and enumerates the join paths. The input database is not
// modified. Call Train before Disambiguate for learned path weights;
// without Train the engine runs with uniform weights.
func Open(db *Database, cfg Config) (*Engine, error) {
	return OpenCtx(context.Background(), db, cfg)
}

// OpenCtx is Open under a context: the expand and enumerate stages observe
// cancellation at their boundaries and return the context's error wrapped
// with the stage name (errors.Is sees context.Canceled/DeadlineExceeded).
func OpenCtx(ctx context.Context, db *Database, cfg Config) (*Engine, error) {
	inner, err := core.NewEngineCtx(ctx, db, core.Config{
		RefRelation: cfg.RefRelation,
		RefAttr:     cfg.RefAttr,
		SkipExpand:  cfg.SkipExpand,
		MaxPathLen:  cfg.MaxPathLen,
		Supervised:  !cfg.Unsupervised,
		Measure:     cfg.Measure,
		MinSim:      cfg.MinSim,
		Train:       cfg.Train,
		SVM:         cfg.SVM,
		Workers:     cfg.Workers,
		Obs:         cfg.Metrics,
		Trace:       cfg.Trace,
	})
	if err != nil {
		return nil, err
	}
	return &Engine{inner: inner}, nil
}

// Train constructs the automatic training set, fits the two SVM models and
// installs learned join-path weights (unless the engine is unsupervised, in
// which case the report is informational and uniform weights remain).
func (e *Engine) Train() (*TrainReport, error) { return e.inner.Train() }

// TrainCtx is Train under a context: cancellation is observed at every
// training stage boundary, between feature-extraction items, and between
// SVM optimisation passes, returning the context's error wrapped with the
// stage that observed it.
func (e *Engine) TrainCtx(ctx context.Context) (*TrainReport, error) {
	return e.inner.TrainCtx(ctx)
}

// Disambiguate splits the references carrying name into groups, one group
// per inferred real object. The returned tuple IDs belong to the engine's
// expanded database, accessible via DB.
func (e *Engine) Disambiguate(name string) ([][]TupleID, error) {
	return e.inner.DisambiguateName(name)
}

// DisambiguateCtx is Disambiguate under a context: cancellation is observed
// between similarity rows, between clustering merges, and at every stage
// boundary, with latency bounded by one chunk of work. The returned error
// wraps context.Canceled / context.DeadlineExceeded with the stage name.
func (e *Engine) DisambiguateCtx(ctx context.Context, name string) ([][]TupleID, error) {
	return e.inner.DisambiguateNameCtx(ctx, name)
}

// DisambiguateRefs clusters an explicit set of references (expanded-DB IDs).
func (e *Engine) DisambiguateRefs(refs []TupleID) [][]TupleID {
	return e.inner.DisambiguateRefs(refs)
}

// Refs returns the references carrying the name, in the engine's database.
func (e *Engine) Refs(name string) []TupleID { return e.inner.RefsForName(name) }

// DB returns the engine's attribute-expanded database; tuple IDs returned
// by Disambiguate refer to it.
func (e *Engine) DB() *Database { return e.inner.DB() }

// MapRef translates a tuple ID of the original database passed to Open into
// the engine's expanded database (InvalidTuple if unknown).
func (e *Engine) MapRef(id TupleID) TupleID { return e.inner.MapRef(id) }

// MapRefs translates a slice of original tuple IDs.
func (e *Engine) MapRefs(ids []TupleID) []TupleID { return e.inner.MapRefs(ids) }

// Paths returns the enumerated join paths, in the order Weights uses.
func (e *Engine) Paths() []JoinPath { return e.inner.Paths() }

// Weights returns the current per-path weights for the resemblance and
// random-walk measures (each non-negative, summing to one).
func (e *Engine) Weights() (resem, walk []float64) { return e.inner.Weights() }

// SetWeights installs explicit per-path weights (one per Paths entry, for
// the resemblance and walk measures respectively). Negative entries are
// clipped to zero and each vector is normalised to sum one. Use this when
// the database is too small for automatic training and you know which join
// paths matter.
func (e *Engine) SetWeights(resem, walk []float64) error {
	return e.inner.SetWeights(resem, walk)
}

// NameGroups is the disambiguation outcome for one name in a batch pass.
type NameGroups = core.NameGroups

// BatchResult summarises a whole-database disambiguation pass, including
// the explicit partial-results contract: names that timed out, degraded, or
// panicked are recorded in Incidents — never dropped silently.
type BatchResult = core.BatchResult

// BatchOptions configures DisambiguateAllCtx: the minimum reference count,
// the per-name budget, and the degraded retry's path cap.
type BatchOptions = core.BatchOptions

// Incident records one name a batch sweep could not process normally:
// which stage failed, why (timeout / degraded / panic / error), and how
// long the name ran.
type Incident = core.Incident

// IncidentReason classifies a batch incident.
type IncidentReason = core.IncidentReason

// Batch incident reasons (see the core package for full semantics).
const (
	IncidentTimeout  = core.IncidentTimeout
	IncidentDegraded = core.IncidentDegraded
	IncidentPanic    = core.IncidentPanic
	IncidentError    = core.IncidentError
)

// DisambiguateAll runs DISTINCT over every name carrying at least minRefs
// references and reports the names whose references split into more than
// one group — the suspected homonyms in the whole database.
func (e *Engine) DisambiguateAll(minRefs int) (*BatchResult, error) {
	return e.inner.DisambiguateAll(minRefs)
}

// DisambiguateAllCtx is DisambiguateAll under a context and per-name
// budgets. A name that blows its BatchOptions.NameTimeout budget is retried
// once in a cheaper degraded mode (top-k join paths by learned weight) and,
// if still over budget, kept as one conservative group; every such name is
// recorded in BatchResult.Incidents. When ctx itself ends, the partial
// BatchResult covering the names completed so far is returned alongside the
// stage-wrapped context error.
func (e *Engine) DisambiguateAllCtx(ctx context.Context, opts BatchOptions) (*BatchResult, error) {
	return e.inner.DisambiguateAllCtx(ctx, opts)
}

// TuneResult reports a min-sim auto-tuning run.
type TuneResult = core.TuneResult

// TuneMinSim selects and installs the clustering threshold without labeled
// data, by synthetically merging pairs of rare names (each presumed to be
// one real object) into pseudo-ambiguous validation cases and sweeping the
// grid (nil = default grid) for the best average f-measure over up to
// maxCases cases.
func (e *Engine) TuneMinSim(grid []float64, maxCases int, seed int64) (*TuneResult, error) {
	return e.inner.TuneMinSim(grid, maxCases, seed)
}

// DisambiguateAuto clusters the name's references with a per-name
// threshold: the dendrogram is cut at its largest similarity collapse when
// a crisp gap exists, and at the engine's min-sim otherwise (an extension
// beyond the paper's fixed global threshold).
func (e *Engine) DisambiguateAuto(name string) ([][]TupleID, error) {
	return e.inner.DisambiguateNameAuto(name)
}

// Explanation breaks one pair's similarity down by join path (see Explain).
type Explanation = core.Explanation

// PathContribution is one join path's share of a pair's similarity.
type PathContribution = core.PathContribution

// Explain answers "why does the engine think these two references are (or
// are not) the same object?" with a per-path similarity breakdown,
// strongest contribution first. Render it with Explanation.Format(eng.DB().Schema).
func (e *Engine) Explain(r1, r2 TupleID) *Explanation { return e.inner.Explain(r1, r2) }

// Affinity returns the relational affinity between the full reference sets
// of two names (the composite cluster similarity between them). Record
// linkage uses it to check whether two differently written names denote
// one object: spellings of one person share collaborators and venues.
func (e *Engine) Affinity(a, b string) float64 { return e.inner.NameAffinity(a, b) }

// MergeStep is one step of a merge profile (see MergeProfile).
type MergeStep = core.MergeStep

// MergeProfile clusters the references fully (ignoring min-sim) and returns
// each merge's similarity, first merge first — the dendrogram profile used
// to choose min-sim by inspection: place the threshold where similarity
// collapses.
func (e *Engine) MergeProfile(refs []TupleID) []MergeStep {
	return e.inner.MergeProfile(refs)
}

// SetMinSim overrides the clustering threshold; MinSim reads it.
func (e *Engine) SetMinSim(v float64) { e.inner.SetMinSim(v) }

// MinSim returns the current clustering threshold.
func (e *Engine) MinSim() float64 { return e.inner.MinSim() }

// SetMeasure overrides the cluster similarity measure.
func (e *Engine) SetMeasure(m Measure) { e.inner.SetMeasure(m) }

// DisambiguateGuarded is Disambiguate under the full per-name resilience
// ladder — the serving-path entry point. A blown opts.NameTimeout budget
// triggers one degraded retry (top-k join paths) and then a conservative
// single group; a panic anywhere in the pipeline becomes an incident, never
// a crash. The returned Incident is nil on the clean path; a non-nil error
// means ctx itself ended or the name has no references.
func (e *Engine) DisambiguateGuarded(ctx context.Context, name string, opts BatchOptions) ([][]TupleID, *Incident, error) {
	return e.inner.DisambiguateNameGuarded(ctx, name, opts)
}

// Names lists the names carrying at least minRefs references, sorted — the
// batch sweep's work list and the name universe the serving API exposes.
func (e *Engine) Names(minRefs int) []string { return e.inner.NamesWithRefs(minRefs) }

// APIOptions configures the HTTP serving front end (see NewAPIServer).
type APIOptions = serve.Options

// APIServer is the HTTP serving front end: /v1/name/{name} and /v1/batch
// over the engine, with request coalescing, a version-keyed result cache,
// and admission control. See DESIGN.md §13.
type APIServer = serve.Server

// APIBackend adapts the engine for an APIServer; renderAttr names the
// reference attribute used to render tuple IDs in responses (e.g. the DBLP
// generator's "paper-key").
func (e *Engine) APIBackend(renderAttr string) serve.Backend {
	return serve.NewEngineBackend(e.inner, renderAttr)
}

// NewAPIServer builds the serving front end over opts.Backend (usually
// Engine.APIBackend). Mount Handler on ServeAPI, drain before exit.
func NewAPIServer(opts APIOptions) (*APIServer, error) { return serve.New(opts) }

// ServeAPI starts the hardened HTTP server stack on addr around the API
// server's handler (the /v1 endpoints plus /metrics and /debug/...).
func ServeAPI(addr string, s *APIServer) (*MetricsServer, error) {
	return obs.ServeHandler(addr, s.Handler())
}

// Model is a portable snapshot of trained join-path weights; save it after
// Train and load it into a future engine over the same schema.
type Model = core.Model

// ExportModel snapshots the engine's current weights.
func (e *Engine) ExportModel() *Model { return e.inner.ExportModel() }

// ApplyModel installs a saved model's weights; the model's join paths must
// match the engine's exactly.
func (e *Engine) ApplyModel(m *Model) error { return e.inner.ApplyModel(m) }

// SaveModel writes the engine's current weights as JSON.
func (e *Engine) SaveModel(w io.Writer) error { return e.inner.SaveModel(w) }

// LoadModel reads a model written by SaveModel.
func LoadModel(r io.Reader) (*Model, error) { return core.LoadModel(r) }

// Metrics are pairwise clustering scores (precision, recall, f-measure,
// accuracy), as defined in Section 5 of the paper.
type Metrics = eval.Metrics

// Clustering is a partition of references.
type Clustering = eval.Clustering

// Score evaluates a predicted grouping against a gold grouping using
// pairwise precision/recall/f-measure/accuracy.
func Score(pred, gold [][]TupleID) (Metrics, error) {
	return eval.Evaluate(eval.Clustering(pred), eval.Clustering(gold))
}
