// Quickstart: disambiguate the "Wei Wang" references of the mini example in
// Figure 1 of the DISTINCT paper (Yin, Han, Yu; ICDE 2007).
//
// The example builds the small DBLP excerpt by hand — a dozen papers by
// four different authors named Wei Wang — and asks the engine to split the
// references using only the linkage structure (coauthors, venues). With so
// little data no training set can be constructed, so the engine runs
// unsupervised with uniform join-path weights.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"distinct"
)

// paper is one row of Figure 1: a key, the author list, venue and year.
type paper struct {
	key     string
	authors []string
	conf    string
	year    string
}

// The papers of Figure 1. Comments give the true Wei Wang per the paper:
// (1) UNC, (2) UNSW Australia, (3) Fudan, (4) SUNY Buffalo.
var papers = []paper{
	{"p1", []string{"Wei Wang", "Jiong Yang", "Richard Muntz"}, "VLDB", "1997"},                      // (1)
	{"p2", []string{"Haixun Wang", "Wei Wang", "Jiong Yang", "Philip S. Yu"}, "SIGMOD", "2002"},      // (1)
	{"p3", []string{"Jiong Yang", "Hwanjo Yu", "Wei Wang", "Jiawei Han"}, "CSB", "2003"},             // (1)
	{"p4", []string{"Jiong Yang", "Jinze Liu", "Wei Wang"}, "KDD", "2004"},                           // (1)
	{"p5", []string{"Jinze Liu", "Wei Wang"}, "KDD", "2004"},                                         // (1)
	{"p6", []string{"Haixun Wang", "Wei Wang", "Baile Shi", "Peng Wang"}, "ICDM", "2003"},            // (3)
	{"p7", []string{"Yongtai Zhu", "Wei Wang", "Jian Pei", "Baile Shi", "Chen Wang"}, "KDD", "2004"}, // (3)
	{"p8", []string{"Wei Wang", "Jian Pei", "Jiawei Han"}, "CIKM", "2002"},                           // (1)
	{"p9", []string{"Wei Wang", "Haifeng Jiang", "Hongjun Lu", "Jeffrey Yu"}, "VLDB", "2004"},        // (2)
	{"p10", []string{"Hongjun Lu", "Yidong Yuan", "Wei Wang", "Xuemin Lin"}, "ICDE", "2005"},         // (2)
	{"p11", []string{"Wei Wang", "Xuemin Lin"}, "ADMA", "2005"},                                      // (2)
	{"p12", []string{"Aidong Zhang", "Yuqing Song", "Wei Wang"}, "WWW", "2003"},                      // (4)
}

var conferences = map[string]string{
	"VLDB": "VLDB Endowment", "SIGMOD": "ACM", "CSB": "IEEE", "KDD": "ACM",
	"ICDM": "IEEE", "CIKM": "ACM", "ICDE": "IEEE", "ADMA": "Springer", "WWW": "ACM",
}

func main() {
	// The DBLP schema of the paper's Figure 2.
	schema := distinct.MustSchema(
		distinct.MustRelationSchema("Authors",
			distinct.Attribute{Name: "author", Key: true}),
		distinct.MustRelationSchema("Publish",
			distinct.Attribute{Name: "author", FK: "Authors"},
			distinct.Attribute{Name: "paper-key", FK: "Publications"}),
		distinct.MustRelationSchema("Publications",
			distinct.Attribute{Name: "paper-key", Key: true},
			distinct.Attribute{Name: "proc-key", FK: "Proceedings"}),
		distinct.MustRelationSchema("Proceedings",
			distinct.Attribute{Name: "proc-key", Key: true},
			distinct.Attribute{Name: "conference", FK: "Conferences"},
			distinct.Attribute{Name: "year"}),
		distinct.MustRelationSchema("Conferences",
			distinct.Attribute{Name: "conference", Key: true},
			distinct.Attribute{Name: "publisher"}),
	)
	db := distinct.NewDatabase(schema)

	for conf, publisher := range conferences {
		db.MustInsert("Conferences", conf, publisher)
	}
	seenAuthors := map[string]bool{}
	seenProcs := map[string]bool{}
	for _, p := range papers {
		proc := p.conf + "/" + p.year
		if !seenProcs[proc] {
			db.MustInsert("Proceedings", proc, p.conf, p.year)
			seenProcs[proc] = true
		}
		db.MustInsert("Publications", p.key, proc)
		for _, a := range p.authors {
			if !seenAuthors[a] {
				db.MustInsert("Authors", a)
				seenAuthors[a] = true
			}
			db.MustInsert("Publish", a, p.key)
		}
	}

	eng, err := distinct.Open(db, distinct.Config{
		RefRelation:  "Publish",
		RefAttr:      "author",
		Unsupervised: true, // the excerpt is far too small for training
		MinSim:       0.02,
	})
	if err != nil {
		log.Fatal(err)
	}

	// On a full database, eng.Train() would learn one weight per join path
	// from automatically constructed examples. Twelve papers cannot feed an
	// SVM, so this example sets expert weights instead: linkage through
	// coauthors is the strong signal, shared venues a weak one, and the
	// year/publisher paths (which connect everything to everything) are
	// ignored — the same ordering training discovers on real data.
	paths := eng.Paths()
	weights := make([]float64, len(paths))
	for i, p := range paths {
		desc := p.Describe(eng.DB().Schema)
		switch {
		case strings.Contains(desc, "Authors"):
			weights[i] = 1.0
		case strings.Contains(desc, "Conferences") && !strings.Contains(desc, "publisher"):
			weights[i] = 0.15
		}
	}
	if err := eng.SetWeights(weights, weights); err != nil {
		log.Fatal(err)
	}

	groups, err := eng.Disambiguate("Wei Wang")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d references to \"Wei Wang\" split into %d groups:\n\n",
		len(eng.Refs("Wei Wang")), len(groups))
	for i, g := range groups {
		fmt.Printf("group %d:\n", i+1)
		for _, r := range g {
			key := eng.DB().Tuple(r).Val("paper-key")
			for _, p := range papers {
				if p.key == key {
					fmt.Printf("  %-4s %s %s  with %v\n", p.key, p.conf, p.year, others(p.authors))
				}
			}
		}
		fmt.Println()
	}
	fmt.Println(`ground truth (paper, Figure 1):
  Wei Wang @ UNC:       p1 p2 p3 p4 p5 p8
  Wei Wang @ UNSW:      p9 p10 p11
  Wei Wang @ Fudan:     p6 p7
  Wei Wang @ SUNY Buf.: p12
Mistakes like pulling p8 toward the Fudan group (via the shared coauthor
Jian Pei) are exactly the error class the paper's Figure 5 reports.`)
}

// others drops Wei Wang from an author list for display.
func others(authors []string) []string {
	var out []string
	for _, a := range authors {
		if a != "Wei Wang" {
			out = append(out, a)
		}
	}
	return out
}
