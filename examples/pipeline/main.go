// Pipeline: the production workflow for keeping a database clean.
//
// A downstream user of DISTINCT rarely asks about one name; they want the
// whole database swept for homonyms, a threshold chosen without manual
// labels, and the trained model persisted so tomorrow's refresh skips
// retraining. This example runs that workflow end to end:
//
//  1. generate (or load) a bibliographic database,
//  2. train join-path weights on automatic rare-name examples,
//  3. auto-tune min-sim on synthetic rare-name pairs (no labels),
//  4. sweep every name with enough references and report the splits,
//  5. save the model, reload it into a fresh engine, and verify the
//     transferred engine reproduces a grouping exactly.
//
// Run with: go run ./examples/pipeline
package main

import (
	"bytes"
	"fmt"
	"log"

	"distinct"
	"distinct/internal/dblp"
)

func main() {
	cfg := dblp.DefaultConfig()
	cfg.Communities = 8
	cfg.AuthorsPerCommunity = 80
	world, err := dblp.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d papers, %d references\n", world.NumPapers(), world.NumReferences())

	open := func() *distinct.Engine {
		eng, err := distinct.Open(world.DB, distinct.Config{
			RefRelation: "Publish",
			RefAttr:     "author",
			SkipExpand:  []string{"Publications.title"},
			Train: distinct.TrainOptions{
				NumPositive: 500, NumNegative: 500, Seed: 1,
				Exclude: world.AmbiguousNames(),
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		return eng
	}

	// 1-2: train.
	eng := open()
	rep, err := eng.Train()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %v (SVM accuracy %.3f/%.3f)\n",
		rep.Timings.TotalTrain, rep.ResemAccuracy, rep.WalkAccuracy)

	// 3: choose min-sim with zero labels.
	tune, err := eng.TuneMinSim(nil, 30, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auto-tuned min-sim = %g (f=%.3f on %d synthetic rare-name pairs)\n",
		tune.MinSim, tune.F1, tune.Cases)

	// 4: sweep the whole database.
	batch, err := eng.DisambiguateAll(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nswept %d names with >=10 references; %d look like homonyms:\n",
		batch.NamesExamined, len(batch.Split))
	shown := batch.Split
	if len(shown) > 8 {
		shown = shown[:8]
	}
	for _, s := range shown {
		fmt.Printf("  %-24s -> %d inferred authors\n", s.Name, len(s.Groups))
	}
	if len(batch.Split) > len(shown) {
		fmt.Printf("  ... and %d more\n", len(batch.Split)-len(shown))
	}

	// 5: persist the model and verify the transfer.
	var buf bytes.Buffer
	if err := eng.SaveModel(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmodel serialized: %d bytes\n", buf.Len())
	model, err := distinct.LoadModel(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fresh := open() // uniform weights, never trained
	if err := fresh.ApplyModel(model); err != nil {
		log.Fatal(err)
	}
	fresh.SetMinSim(tune.MinSim)

	name := world.AmbiguousNames()[0]
	a, err := eng.Disambiguate(name)
	if err != nil {
		log.Fatal(err)
	}
	b, err := fresh.Disambiguate(name)
	if err != nil {
		log.Fatal(err)
	}
	if len(a) != len(b) {
		log.Fatalf("transfer mismatch: %d vs %d groups", len(a), len(b))
	}
	fmt.Printf("model transfer verified: %q resolves to %d groups on both engines\n", name, len(a))
}
