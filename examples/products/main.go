// Products: distinguishing songs that share one title.
//
// The paper's introduction motivates object distinction with allmusic.com,
// where 72 different songs are named "Forgotten". This example shows
// DISTINCT on that domain with a schema that has nothing to do with DBLP:
//
//	Titles(title)                                 – the shared names
//	Tracks(title -> Titles, album -> Albums)      – the references
//	Albums(album, artist -> Artists, label -> Labels, year)
//	Artists(artist, genre)
//	Labels(label)
//
// A synthetic music catalog is generated in which four different songs
// called "Forgotten" (by four artists in different genres) each appear on
// several albums — original records, re-releases, compilations. The engine
// trains itself on rare titles (presumed to be a single song) and then
// groups the "Forgotten" track references by real song.
//
// Run with: go run ./examples/products
package main

import (
	"fmt"
	"log"
	"math/rand"

	"distinct"
)

var genres = []string{"rock", "jazz", "electronic", "folk"}

var titleWords1 = []string{
	"Midnight", "Silver", "Broken", "Electric", "Golden", "Silent", "Wild",
	"Burning", "Frozen", "Crimson", "Velvet", "Hollow", "Distant", "Neon",
	"Paper", "Iron", "Glass", "Violet", "Echoing", "Fading", "Scarlet",
	"Wandering", "Sleeping", "Rising", "Falling", "Hidden", "Lonely",
	"Restless", "Shattered", "Gentle", "Bitter", "Amber", "Pale", "Last",
	"First", "Endless", "Quiet", "Roaring", "Drifting", "Sacred",
}

var titleWords2 = []string{
	"Rain", "Road", "Heart", "Dream", "River", "Sky", "Fire", "Dance",
	"Shadow", "Mirror", "Train", "Garden", "Letter", "Season", "Harbor",
	"Window", "Circle", "Lantern", "Meadow", "Thunder", "Valley", "Coast",
	"Bridge", "Tower", "Island", "Desert", "Forest", "Ocean", "Canyon",
	"Street", "Morning", "Evening", "Winter", "Summer", "Stranger",
	"Promise", "Secret", "Whisper", "Echo", "Horizon",
}

// pickWord draws from a pool with a power-law skew: low indexes dominate,
// high indexes form the rare tail the automatic training set needs.
func pickWord(rng *rand.Rand, pool []string) string {
	u := rng.Float64()
	return pool[int(float64(len(pool))*u*u*u)]
}

type song struct {
	artist string
	albums []string // albums the song appears on
}

func main() {
	rng := rand.New(rand.NewSource(7))

	schema := distinct.MustSchema(
		distinct.MustRelationSchema("Titles",
			distinct.Attribute{Name: "title", Key: true}),
		distinct.MustRelationSchema("Tracks",
			distinct.Attribute{Name: "title", FK: "Titles"},
			distinct.Attribute{Name: "album", FK: "Albums"}),
		distinct.MustRelationSchema("Albums",
			distinct.Attribute{Name: "album", Key: true},
			distinct.Attribute{Name: "artist", FK: "Artists"},
			distinct.Attribute{Name: "label", FK: "Labels"},
			distinct.Attribute{Name: "year"}),
		distinct.MustRelationSchema("Artists",
			distinct.Attribute{Name: "artist", Key: true},
			distinct.Attribute{Name: "genre"}),
		distinct.MustRelationSchema("Labels",
			distinct.Attribute{Name: "label", Key: true}),
	)
	db := distinct.NewDatabase(schema)

	titles := map[string]bool{}
	addTitle := func(t string) {
		if !titles[t] {
			db.MustInsert("Titles", t)
			titles[t] = true
		}
	}

	// Labels and artists per genre.
	artistAlbums := map[string][]string{} // artist -> album keys
	var artists []string
	for gi, g := range genres {
		for l := 0; l < 2; l++ {
			db.MustInsert("Labels", fmt.Sprintf("%s-label-%d", g, l))
		}
		for a := 0; a < 8; a++ {
			artist := fmt.Sprintf("%s-artist-%d", g, a)
			db.MustInsert("Artists", artist, g)
			artists = append(artists, artist)
			nAlbums := 3 + rng.Intn(3)
			for al := 0; al < nAlbums; al++ {
				album := fmt.Sprintf("%s/album-%d", artist, al)
				label := fmt.Sprintf("%s-label-%d", g, rng.Intn(2))
				year := fmt.Sprintf("%d", 1980+gi*5+rng.Intn(25))
				db.MustInsert("Albums", album, artist, label, year)
				artistAlbums[artist] = append(artistAlbums[artist], album)
			}
		}
	}

	// Ordinary tracks: each album gets 8-12 songs with two-word titles.
	// Each artist also has "signature songs" that recur across their albums
	// (re-releases and compilations) — the linkage DISTINCT exploits.
	for _, artist := range artists {
		albums := artistAlbums[artist]
		signatures := make([]string, 2+rng.Intn(2))
		for i := range signatures {
			signatures[i] = pickWord(rng, titleWords1) + " " + pickWord(rng, titleWords2)
		}
		for _, album := range albums {
			n := 8 + rng.Intn(5)
			used := map[string]bool{}
			for t := 0; t < n; t++ {
				var title string
				if rng.Float64() < 0.3 {
					title = signatures[rng.Intn(len(signatures))]
				} else {
					title = pickWord(rng, titleWords1) + " " + pickWord(rng, titleWords2)
				}
				if used[title] {
					continue
				}
				used[title] = true
				addTitle(title)
				db.MustInsert("Tracks", title, album)
			}
		}
	}

	// Four different songs named "Forgotten", by artists in four genres,
	// each appearing on several of that artist's albums.
	addTitle("Forgotten")
	goldSongs := []song{
		{artist: "rock-artist-0"},
		{artist: "jazz-artist-3"},
		{artist: "electronic-artist-5"},
		{artist: "folk-artist-2"},
	}
	appearances := []int{4, 3, 3, 2}
	var gold [][]distinct.TupleID
	for si := range goldSongs {
		s := &goldSongs[si]
		albums := artistAlbums[s.artist]
		rng.Shuffle(len(albums), func(i, j int) { albums[i], albums[j] = albums[j], albums[i] })
		n := appearances[si]
		if n > len(albums) {
			n = len(albums)
		}
		var cluster []distinct.TupleID
		for _, album := range albums[:n] {
			id, err := db.Insert("Tracks", "Forgotten", album)
			if err != nil {
				log.Fatal(err)
			}
			s.albums = append(s.albums, album)
			cluster = append(cluster, id)
		}
		gold = append(gold, cluster)
	}

	eng, err := distinct.Open(db, distinct.Config{
		RefRelation: "Tracks",
		RefAttr:     "title",
		MinSim:      0.02,
		Train: distinct.TrainOptions{
			NumPositive: 300, NumNegative: 300, Seed: 1,
			// Rare titles: both words uncommon across the catalog.
			MaxFirstFreq: 8, MaxLastFreq: 8,
			Exclude: []string{"Forgotten"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := eng.Train()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog: %d titles, %d track references\n",
		db.Relation("Titles").Size(), db.Relation("Tracks").Size())
	fmt.Printf("trained on rare titles: %d pairs, SVM accuracy %.3f/%.3f\n\n",
		rep.NumPositive+rep.NumNegative, rep.ResemAccuracy, rep.WalkAccuracy)

	groups, err := eng.Disambiguate("Forgotten")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d tracks named \"Forgotten\" split into %d groups:\n\n",
		len(eng.Refs("Forgotten")), len(groups))
	for i, g := range groups {
		fmt.Printf("group %d:\n", i+1)
		for _, r := range g {
			album := eng.DB().Tuple(r).Val("album")
			at := eng.DB().LookupKey("Albums", album)
			artist := eng.DB().Tuple(at).Val("artist")
			fmt.Printf("  on %-28s by %s\n", album, artist)
		}
	}

	var goldMapped [][]distinct.TupleID
	for _, c := range gold {
		goldMapped = append(goldMapped, eng.MapRefs(c))
	}
	m, err := distinct.Score(groups, goldMapped)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nground truth: 4 songs; %s\n", m)
}
