// Ablation: which of DISTINCT's design choices actually matter?
//
// The example regenerates the paper's Figure 4 comparison (six variants:
// {combined, set-resemblance, random-walk} × {supervised, unsupervised})
// and then goes beyond the paper, ablating the clustering design choices
// the methodology section argues for:
//
//   - geometric vs arithmetic combination of the two measures (§4.1 argues
//     the arithmetic mean lets the larger-scaled measure drown the other),
//   - average-link vs single-link vs complete-link cluster similarity
//     (§4.1 argues both extremes fail on weakly linked author partitions).
//
// Run with: go run ./examples/ablation
package main

import (
	"fmt"
	"log"

	"distinct/internal/dblp"
	"distinct/internal/experiments"
)

func main() {
	world := dblp.DefaultConfig()
	// A mid-sized world keeps the run under ~10 seconds.
	world.Communities = 8
	world.AuthorsPerCommunity = 80
	h, err := experiments.NewHarness(experiments.Options{
		World:         world,
		TrainPositive: 500,
		TrainNegative: 500,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("world: %d identities, %d papers, %d references\n\n",
		len(h.World.Identities), h.World.NumPapers(), h.World.NumReferences())

	fmt.Println("Figure 4 variants (per-variant min-sim tuned, DISTINCT fixed):")
	rows, err := h.Figure4()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.FormatFigure4(rows))

	fmt.Println("Cluster-measure ablation (beyond the paper):")
	rows, err = h.Ablation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiments.FormatFigure4(rows))

	fmt.Println(`Reading the results:
  - supervision is worth ~10+ points of f-measure over uniform weights
    (compare each supervised variant with its unsupervised twin);
  - combining both similarity measures beats either alone;
  - the geometric mean beats the arithmetic mean because the random-walk
    probabilities are orders of magnitude smaller than resemblances;
  - single-link over-merges through incidental links and complete-link
    shatters authors whose collaboration groups are weakly connected.`)
}
