// DBLP authors: the paper's main scenario, end to end.
//
// The example generates a DBLP-like bibliographic world whose ten ambiguous
// names carry the exact author/reference profile of Table 1 of the paper
// (Hui Fang 3/9 … Wei Wang 14/143), trains DISTINCT's join-path weights on
// an automatically constructed training set — no manual labels — and
// disambiguates every ambiguous name, scoring against the generator's
// ground truth.
//
// Run with: go run ./examples/dblp-authors
package main

import (
	"fmt"
	"log"

	"distinct"
	"distinct/internal/dblp"
)

func main() {
	fmt.Println("generating a DBLP-like world with the paper's Table 1 profile...")
	world, err := dblp.Generate(dblp.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d identities, %d papers, %d references\n\n",
		len(world.Identities), world.NumPapers(), world.NumReferences())

	eng, err := distinct.Open(world.DB, distinct.Config{
		RefRelation: "Publish",
		RefAttr:     "author",
		SkipExpand:  []string{"Publications.title"},
		Train: distinct.TrainOptions{
			// Never train on the names under evaluation.
			Exclude: world.AmbiguousNames(),
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	rep, err := eng.Train()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d+%d automatic pairs from %d rare names in %v\n",
		rep.NumPositive, rep.NumNegative, rep.NumRareNames, rep.Timings.TotalTrain)
	fmt.Printf("SVM training accuracy: resemblance %.3f, walk %.3f\n\n",
		rep.ResemAccuracy, rep.WalkAccuracy)

	// The learned weights explain what the model found informative.
	fmt.Println("most informative join paths (resemblance weight):")
	paths := eng.Paths()
	resemW, _ := eng.Weights()
	for i, p := range paths {
		if resemW[i] >= 0.05 {
			fmt.Printf("  %5.2f  %s\n", resemW[i], p.Describe(eng.DB().Schema))
		}
	}
	fmt.Println()

	fmt.Printf("%-22s %8s %8s %10s %8s %8s\n", "name", "#authors", "#refs", "precision", "recall", "f-meas")
	var sumP, sumR, sumF float64
	names := world.AmbiguousNames()
	for _, name := range names {
		groups, err := eng.Disambiguate(name)
		if err != nil {
			log.Fatal(err)
		}
		var gold [][]distinct.TupleID
		for _, c := range world.GoldClusters(name) {
			gold = append(gold, eng.MapRefs(c))
		}
		m, err := distinct.Score(groups, gold)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %8d %8d %10.3f %8.3f %8.3f\n",
			name, len(gold), len(eng.Refs(name)), m.Precision, m.Recall, m.F1)
		sumP += m.Precision
		sumR += m.Recall
		sumF += m.F1
	}
	n := float64(len(names))
	fmt.Printf("%-22s %8s %8s %10.3f %8.3f %8.3f\n", "average", "", "", sumP/n, sumR/n, sumF/n)
	fmt.Println("\n(the paper reports average recall 0.836 with no false positives on 7/10 names)")
}
