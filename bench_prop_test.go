// Micro-benchmarks of the compiled propagation plans: the map-DFS reference
// walker against the CSR frontier engine on identical inputs, plus the cost
// of plan compilation itself. These are the headline numbers for the
// array-based propagation optimisation (DESIGN.md section 11).
package distinct_test

import (
	"testing"

	"distinct/internal/prop"
)

// BenchmarkPropagate compares one full multi-path propagation — every join
// path of the engine, one "Wei Wang" reference per iteration — under the
// map-DFS walker and the compiled CSR frontier engine. Both variants produce
// the same sorted SparseNeighborhood slices, so ns/op and B/op are directly
// comparable.
func BenchmarkPropagate(b *testing.B) {
	e, _ := benchEngine(b)
	refs := e.RefsForName("Wei Wang")
	trie := prop.NewTrie(e.Paths())

	b.Run("mapdfs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if got := prop.PropagateMultiSparse(e.DB(), refs[i%len(refs)], trie); len(got) == 0 {
				b.Fatal("empty propagation")
			}
		}
	})

	b.Run("csr", func(b *testing.B) {
		ct := prop.CompileTrie(e.DB(), trie)
		s := ct.NewScratch()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := ct.Propagate(refs[i%len(refs)], s); len(got) == 0 {
				b.Fatal("empty propagation")
			}
		}
	})
}

// BenchmarkPlanCompile measures compiling the whole path trie into CSR hops
// from a cold cache — the one-off cost an engine pays before the first
// propagation. Uncached so every iteration rebuilds the hop indexes instead
// of hitting the database's plan cache.
func BenchmarkPlanCompile(b *testing.B) {
	e, _ := benchEngine(b)
	trie := prop.NewTrie(e.Paths())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct := prop.CompileTrieUncached(e.DB(), trie)
		if hops, edges := ct.Stats(); hops == 0 || edges == 0 {
			b.Fatalf("empty plan: %d hops, %d edges", hops, edges)
		}
	}
}
