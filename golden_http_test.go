// Golden HTTP regression test: the serving front end over the fixed-seed
// golden world must keep producing byte-identical JSON — group renderings,
// versions, status codes, cache/coalescing metadata — for a scripted set of
// requests. Wall-clock fields (elapsed_ms) are normalized to zero before
// comparison; everything else is exact. Regenerate after an intentional
// change with
//
//	go test -run TestGoldenHTTP -update
//
// and review the diff of testdata/golden_http.json.
package distinct_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"distinct"
	"distinct/internal/dblp"
)

const goldenHTTPPath = "testdata/golden_http.json"

// goldenExchange is one recorded request/response pair.
type goldenExchange struct {
	Method string `json:"method"`
	Path   string `json:"path"`
	Body   string `json:"body,omitempty"`
	Status int    `json:"status"`
	JSON   any    `json:"json"`
}

// normalizeTiming recursively zeroes every elapsed_ms field — the only
// wall-clock-dependent value the API emits.
func normalizeTiming(v any) {
	switch x := v.(type) {
	case map[string]any:
		if _, ok := x["elapsed_ms"]; ok {
			x["elapsed_ms"] = float64(0)
		}
		for _, child := range x {
			normalizeTiming(child)
		}
	case []any:
		for _, child := range x {
			normalizeTiming(child)
		}
	}
}

func goldenHTTPRun(t *testing.T) []goldenExchange {
	t.Helper()
	cfg := dblp.DefaultConfig()
	cfg.Communities = 6
	cfg.AuthorsPerCommunity = 50
	w, err := dblp.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := distinct.Open(w.DB, distinct.Config{
		RefRelation: dblp.ReferenceRelation,
		RefAttr:     dblp.ReferenceAttr,
		SkipExpand:  []string{dblp.TitleAttr},
		Train: distinct.TrainOptions{
			NumPositive: 300, NumNegative: 300,
			Exclude: w.AmbiguousNames(), Seed: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Train(); err != nil {
		t.Fatal(err)
	}
	srv, err := distinct.NewAPIServer(distinct.APIOptions{
		Backend: eng.APIBackend("paper-key"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	h := srv.Handler()

	ambiguous := w.AmbiguousNames()
	if len(ambiguous) == 0 {
		t.Fatal("golden world has no ambiguous names")
	}
	batchBody, err := json.Marshal(map[string]any{"names": ambiguous})
	if err != nil {
		t.Fatal(err)
	}

	// The script: a cold single-name lookup, the same lookup again (must
	// report cached:true), the full ambiguous batch (first name cached, the
	// rest computed), a miss, and the name universe above the batch floor.
	requests := []goldenExchange{
		{Method: "GET", Path: "/v1/name/" + url.PathEscape(ambiguous[0])},
		{Method: "GET", Path: "/v1/name/" + url.PathEscape(ambiguous[0])},
		{Method: "POST", Path: "/v1/batch", Body: string(batchBody)},
		{Method: "GET", Path: "/v1/name/" + url.PathEscape("No Such Author")},
		{Method: "GET", Path: "/v1/names?min_refs=20"},
		{Method: "GET", Path: "/healthz"},
	}
	for i := range requests {
		rq := &requests[i]
		var body *strings.Reader
		if rq.Body != "" {
			body = strings.NewReader(rq.Body)
		} else {
			body = strings.NewReader("")
		}
		req := httptest.NewRequest(rq.Method, rq.Path, body)
		if rq.Body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		// New observability headers are asserted here, separately from the
		// golden bytes: headers never enter the recorded JSON, so the byte
		// comparison below stays exactly as strict as before.
		if strings.HasPrefix(rq.Path, "/v1/") {
			if id := rec.Header().Get("X-Request-ID"); len(id) != 16 {
				t.Errorf("%s %s: minted X-Request-ID %q, want 16 hex chars", rq.Method, rq.Path, id)
			}
		}
		rq.Status = rec.Code
		if strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
			var v any
			if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
				t.Fatalf("%s %s: unparseable response %q: %v", rq.Method, rq.Path, rec.Body.String(), err)
			}
			normalizeTiming(v)
			rq.JSON = v
		} else {
			rq.JSON = rec.Body.String()
		}
	}
	return requests
}

func TestGoldenHTTP(t *testing.T) {
	got := goldenHTTPRun(t)

	// Round-trip through canonical JSON so the comparison (and the committed
	// file) is independent of Go-side types.
	raw, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, '\n')

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenHTTPPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenHTTPPath, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenHTTPPath, len(raw))
		return
	}

	want, err := os.ReadFile(goldenHTTPPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(raw, want) {
		diffAt := 0
		for diffAt < len(raw) && diffAt < len(want) && raw[diffAt] == want[diffAt] {
			diffAt++
		}
		lo := diffAt - 120
		if lo < 0 {
			lo = 0
		}
		hiG, hiW := diffAt+120, diffAt+120
		if hiG > len(raw) {
			hiG = len(raw)
		}
		if hiW > len(want) {
			hiW = len(want)
		}
		t.Fatalf("HTTP responses diverge from %s at byte %d\n got: ...%s...\nwant: ...%s...\n(run with -update if the change is intentional)",
			goldenHTTPPath, diffAt, raw[lo:hiG], want[lo:hiW])
	}

	// The script's own invariants, independent of the golden bytes: the
	// repeat lookup was served from cache, and the miss is a 404 envelope.
	second := got[1].JSON.(map[string]any)
	if second["cached"] != true {
		t.Errorf("repeat lookup not cached: %v", second)
	}
	if got[3].Status != http.StatusNotFound {
		t.Errorf("unknown name status = %d, want 404", got[3].Status)
	}
}
