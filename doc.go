// Package distinct is a from-scratch Go implementation of DISTINCT, the
// object-distinction methodology of Xiaoxin Yin, Jiawei Han and Philip S.
// Yu ("Object Distinction: Distinguishing Objects with Identical Names",
// ICDE 2007).
//
// DISTINCT solves the reverse of record linkage: instead of merging
// differently-written records that denote one object, it splits references
// that share one name across several real-world objects (fourteen authors
// named "Wei Wang" in DBLP, say). Because the references are textually
// identical, only the linkage structure of the database can tell them
// apart. DISTINCT:
//
//   - measures similarity between two references along every join path of
//     the schema, with two complementary measures — set resemblance of
//     neighbor tuples (context) and random walk probability (connection
//     strength);
//   - learns a weight per join path with a linear SVM, on a training set
//     constructed automatically from rare (hence presumed-unique) names;
//   - groups references by agglomerative clustering under a composite
//     measure: the geometric mean of average-link resemblance and
//     collective random walk probability.
//
// # Quick start
//
//	db := distinct.NewDatabase(schema)   // load your relational data
//	eng, err := distinct.Open(db, distinct.Config{
//	    RefRelation: "Publish",
//	    RefAttr:     "author",
//	})
//	report, err := eng.Train()           // automatic; no labels needed
//	groups, err := eng.Disambiguate("Wei Wang")
//
// Each group of reference tuple IDs corresponds to one inferred real
// object. See the examples directory for complete programs, including the
// paper's DBLP scenario, and the experiments command for a reproduction of
// the paper's full evaluation.
package distinct
