// Serving-path benchmarks: request throughput through the full HTTP stack
// (mux, admission, coalescing, cache) via direct ServeHTTP — no sockets, so
// the numbers isolate the serving layer itself. Two regimes matter:
// cache-hit throughput (the steady state a warm server lives in) and the
// cold compute path (what a cache miss costs end to end).
package distinct_test

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"distinct"
	"distinct/internal/dblp"
)

var (
	benchServeOnce sync.Once
	benchServeEng  *distinct.Engine
	benchServeAmb  []string
)

// benchServeEngine trains one engine on the golden world for all serving
// benchmarks; the API server over it is rebuilt per benchmark so each run
// starts with the cache state it means to measure.
func benchServeEngine(b *testing.B) (*distinct.Engine, []string) {
	b.Helper()
	benchServeOnce.Do(func() {
		cfg := dblp.DefaultConfig()
		cfg.Communities = 6
		cfg.AuthorsPerCommunity = 50
		w, err := dblp.Generate(cfg)
		if err != nil {
			panic(err)
		}
		eng, err := distinct.Open(w.DB, distinct.Config{
			RefRelation: dblp.ReferenceRelation,
			RefAttr:     dblp.ReferenceAttr,
			SkipExpand:  []string{dblp.TitleAttr},
			Train: distinct.TrainOptions{
				NumPositive: 300, NumNegative: 300,
				Exclude: w.AmbiguousNames(), Seed: 1,
			},
		})
		if err != nil {
			panic(err)
		}
		if _, err := eng.Train(); err != nil {
			panic(err)
		}
		benchServeEng = eng
		benchServeAmb = w.AmbiguousNames()
	})
	return benchServeEng, benchServeAmb
}

func benchServeServer(b *testing.B) (http.Handler, []string) {
	b.Helper()
	eng, names := benchServeEngine(b)
	// Observability at production defaults: the flight recorder rides along
	// (default-on) and access logs run at the default 1-in-100 sample, so
	// the throughput number prices in the instrumented request path. The
	// overload machinery is on too — per-client quotas (rate high enough to
	// never throttle: httptest requests share one remote address, so they all
	// charge one bucket), the brownout ladder, and stale-while-revalidate at
	// its default window — pricing in the per-request cost of the resilience
	// checks themselves.
	srv, err := distinct.NewAPIServer(distinct.APIOptions{
		Backend:   eng.APIBackend("paper-key"),
		AccessLog: slog.New(slog.NewTextHandler(io.Discard, nil)),
		QuotaRPS:  1e9,
		Brownout:  true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	return srv.Handler(), names
}

// BenchmarkServeThroughput measures warm-path request throughput: every
// name pre-computed, each request a cache hit. This is the serving layer's
// overhead floor — mux dispatch, cache probe, JSON encoding.
func BenchmarkServeThroughput(b *testing.B) {
	h, names := benchServeServer(b)
	paths := make([]string, len(names))
	for i, name := range names {
		paths[i] = "/v1/name/" + url.PathEscape(name)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", paths[i], nil))
		if w.Code != http.StatusOK {
			b.Fatalf("warmup %s: %d %s", name, w.Code, w.Body.String())
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest("GET", paths[i%len(paths)], nil))
			if w.Code != http.StatusOK {
				b.Fatalf("status %d", w.Code)
			}
			i++
		}
	})
}

// BenchmarkServeColdLookup measures the cache-miss path: each iteration
// runs against a cache-disabled server, so every request goes through
// admission, coalescing, and a full engine computation.
func BenchmarkServeColdLookup(b *testing.B) {
	eng, names := benchServeEngine(b)
	srv, err := distinct.NewAPIServer(distinct.APIOptions{
		Backend:    eng.APIBackend("paper-key"),
		CacheBytes: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	h := srv.Handler()
	path := "/v1/name/" + url.PathEscape(names[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}
