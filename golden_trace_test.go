// Golden trace regression test: the span tree shape and the decision-level
// event sequence (merges, cuts, learned path weights, sampled pair indices)
// of the fixed benchmark world must be reproduced exactly — with timestamps,
// span ids, and wall-clock attributes normalized out — whatever the worker
// count. CI runs this at GOMAXPROCS=1 and under -race; both must match the
// same committed file. Intentional changes regenerate it with
//
//	go test -run TestGoldenTrace -update
//
// The same run also asserts the Chrome trace-event export structurally:
// valid trace-event JSON, one "merge" instant per clustering merge, cluster
// ids and composite similarity attached to each.
package distinct_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"distinct"
	"distinct/internal/dblp"
	"distinct/internal/obs/trace"
)

const goldenTracePath = "testdata/golden_trace.json"

// tracedRun executes the golden pipeline (the goldenRun world) with tracing
// on and returns the finished trace plus the metrics registry.
func tracedRun(t *testing.T, minRefs int) (*distinct.Trace, *distinct.Registry) {
	t.Helper()
	cfg := dblp.DefaultConfig()
	cfg.Communities = 6
	cfg.AuthorsPerCommunity = 50
	w, err := dblp.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := distinct.NewMetrics()
	tr := distinct.NewTrace(64)
	eng, err := distinct.Open(w.DB, distinct.Config{
		RefRelation: dblp.ReferenceRelation,
		RefAttr:     dblp.ReferenceAttr,
		SkipExpand:  []string{dblp.TitleAttr},
		Train: distinct.TrainOptions{
			NumPositive: 300, NumNegative: 300,
			Exclude: w.AmbiguousNames(), Seed: 1,
		},
		Metrics: reg,
		Trace:   tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Train(); err != nil {
		t.Fatal(err)
	}
	res, err := eng.DisambiguateAll(minRefs)
	if err != nil {
		t.Fatal(err)
	}
	// The clean path must be incident-free; countIncidentEvents asserts the
	// same about the trace the run produced.
	if len(res.Incidents) != 0 {
		t.Fatalf("clean run produced %d incidents, first: %+v", len(res.Incidents), res.Incidents[0])
	}
	tr.Finish()
	return tr, reg
}

// countIncidentEvents walks a normalized tree counting "incident" events.
func countIncidentEvents(n *normSpan) int {
	total := 0
	for _, ev := range n.Events {
		if ev == "incident" || strings.HasPrefix(ev, "incident ") {
			total++
		}
	}
	for _, c := range n.Children {
		total += countIncidentEvents(c)
	}
	return total
}

// normSpan is the committed shape of one span: name, stable attributes, the
// decision events, and name-sorted children. Timestamps, ids, and durations
// are gone; what remains must be bit-identical run to run.
type normSpan struct {
	Name     string      `json:"name"`
	Attrs    []string    `json:"attrs,omitempty"`
	Events   []string    `json:"events,omitempty"`
	Children []*normSpan `json:"children,omitempty"`
}

// normValue formats attribute values the way trace.Attr does, so the golden
// file is independent of encoding/json float rendering.
func normValue(v any) string {
	switch x := v.(type) {
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case int64:
		return strconv.FormatInt(x, 10)
	default:
		return fmt.Sprint(x)
	}
}

// normAttrs renders an attribute map as sorted key=value strings.
func normAttrs(attrs map[string]any) []string {
	out := make([]string, 0, len(attrs))
	for k, v := range attrs {
		out = append(out, k+"="+normValue(v))
	}
	sort.Strings(out)
	return out
}

// normEvent renders one event. Decision events (merge, cut, path_weight)
// keep every attribute; sampled pair events keep only the pair indices —
// which lock the deterministic sampling policy — because their similarity
// breakdowns are bulky and already covered by the merge sequence they feed.
func normEvent(ev trace.EventNode) string {
	switch ev.Name {
	case "merge", "cut", "path_weight":
		return ev.Name + " " + strings.Join(normAttrs(ev.Attrs), " ")
	case "pair":
		return fmt.Sprintf("pair i=%v j=%v", normValue(ev.Attrs["i"]), normValue(ev.Attrs["j"]))
	default:
		return ev.Name
	}
}

// normalize maps a SpanNode subtree to its committed shape. Children are
// stable-sorted by name: batch per-name spans finish in worker order, and
// the trace records them in completion order, which is the one thing about
// the tree that legitimately varies with GOMAXPROCS.
func normalize(n *trace.SpanNode) *normSpan {
	out := &normSpan{Name: n.Name, Attrs: normAttrs(n.Attrs)}
	for _, ev := range n.Events {
		out.Events = append(out.Events, normEvent(ev))
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, normalize(c))
	}
	sort.SliceStable(out.Children, func(i, j int) bool {
		return out.Children[i].Name < out.Children[j].Name
	})
	return out
}

func TestGoldenTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	// minRefs 120 keeps the committed file reviewable: six ambiguous names,
	// every one still exercising blocks → similarities → cluster spans.
	tr, _ := tracedRun(t, 120)
	got := normalize(tr.Tree())
	if n := countIncidentEvents(got); n != 0 {
		t.Errorf("clean run recorded %d incident trace events, want 0", n)
	}

	b, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	b = append(b, '\n')

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenTracePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTracePath, b, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden trace rewritten: %s (%d bytes)", goldenTracePath, len(b))
		return
	}

	want, err := os.ReadFile(goldenTracePath)
	if err != nil {
		t.Fatalf("reading golden trace (regenerate with -update): %v", err)
	}
	if !bytes.Equal(b, want) {
		// Point at the first diverging line rather than dumping both trees.
		gotLines, wantLines := strings.Split(string(b), "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
			if gotLines[i] != wantLines[i] {
				t.Fatalf("trace diverges from golden at line %d:\n got %s\nwant %s",
					i+1, gotLines[i], wantLines[i])
			}
		}
		t.Fatalf("trace length differs from golden: got %d lines, want %d",
			len(gotLines), len(wantLines))
	}
}

// chromeTrace mirrors the trace-event JSON container format.
type chromeTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestChromeTraceStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	tr, reg := tracedRun(t, 120)

	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if ct.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want \"ms\"", ct.DisplayTimeUnit)
	}
	if len(ct.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}

	var spans, merges int
	for i, ev := range ct.TraceEvents {
		switch ev.Ph {
		case "M": // process metadata
			if i != 0 {
				t.Errorf("metadata event at index %d, want 0", i)
			}
		case "X": // complete span
			spans++
			if ev.Name == "" || ev.Dur < 0 || ev.Ts < 0 {
				t.Errorf("malformed span event %+v", ev)
			}
		case "i": // instant
			if ev.Ts < 0 {
				t.Errorf("instant %q has negative timestamp", ev.Name)
			}
			if ev.Name != "merge" {
				continue
			}
			merges++
			for _, key := range []string{"a", "b", "new", "sim"} {
				if _, ok := ev.Args[key]; !ok {
					t.Fatalf("merge event missing %q arg: %v", key, ev.Args)
				}
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if spans == 0 {
		t.Error("chrome export has no span events")
	}
	// Every clustering merge must surface as exactly one merge instant.
	wantMerges := reg.Snapshot().Counters["cluster.merges"]
	if int64(merges) != wantMerges {
		t.Errorf("chrome export has %d merge events, cluster.merges counter says %d",
			merges, wantMerges)
	}
}
