package distinct_test

import (
	"testing"

	"distinct"
)

// TestPublicWrapperSurface exercises the thin public wrappers end to end so
// the façade cannot silently drift from the engine underneath.
func TestPublicWrapperSurface(t *testing.T) {
	w := publicWorld(t)
	eng := trainedEngine(t, w)

	refs := eng.Refs("Wei Wang")
	if len(refs) == 0 {
		t.Fatal("no refs")
	}

	// DisambiguateRefs on an explicit subset.
	groups := eng.DisambiguateRefs(refs[:5])
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != 5 {
		t.Errorf("subset clustering covers %d refs", total)
	}

	// MapRef singular.
	orig := w.Refs("Wei Wang")[0]
	if eng.MapRef(orig) == distinct.InvalidTuple {
		t.Error("MapRef failed on a known reference")
	}
	if eng.MapRef(distinct.TupleID(1<<29)) != distinct.InvalidTuple {
		t.Error("MapRef resolved a bogus ID")
	}

	// MergeProfile through the façade.
	prof := eng.MergeProfile(refs)
	if len(prof) != len(refs)-1 {
		t.Errorf("merge profile %d steps for %d refs", len(prof), len(refs))
	}

	// DisambiguateAuto through the façade.
	auto, err := eng.DisambiguateAuto("Wei Wang")
	if err != nil {
		t.Fatal(err)
	}
	total = 0
	for _, g := range auto {
		total += len(g)
	}
	if total != len(refs) {
		t.Errorf("auto clustering covers %d of %d refs", total, len(refs))
	}
	if _, err := eng.DisambiguateAuto("No Such Name"); err == nil {
		t.Error("auto clustering accepted unknown name")
	}

	// Explain through the façade.
	ex := eng.Explain(refs[0], refs[1])
	if ex == nil || ex.R1 != refs[0] {
		t.Fatal("Explain returned nothing")
	}
	if out := ex.Format(eng.DB().Schema); len(out) == 0 {
		t.Error("empty explanation text")
	}

	// SetWeights through the façade.
	n := len(eng.Paths())
	wv := make([]float64, n)
	wv[0] = 1
	if err := eng.SetWeights(wv, wv); err != nil {
		t.Fatal(err)
	}
	rw, _ := eng.Weights()
	if rw[0] != 1 {
		t.Errorf("SetWeights not applied: %v", rw[0])
	}
	if err := eng.SetWeights(wv[:1], wv); err == nil {
		t.Error("short weight vector accepted")
	}
}

func TestPublicAffinity(t *testing.T) {
	w := publicWorld(t)
	eng := trainedEngine(t, w)
	if got := eng.Affinity("Wei Wang", "Wei Wang"); got <= 0 {
		t.Errorf("self affinity = %v", got)
	}
	if eng.Affinity("Wei Wang", "Nobody") != 0 {
		t.Error("missing-name affinity not zero")
	}
}
