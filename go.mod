module distinct

go 1.22
