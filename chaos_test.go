// Chaos suite: drives the resilience layer with the deterministic fault
// harness (internal/fault). Every schedule is a pure function of -chaos.seed,
// so a failing run replays exactly; CI sweeps seeds 1..3 under -race.
//
// The suite asserts the resilient-execution contract end to end:
//   - cancelling at every stage boundary surfaces a stage-wrapped
//     context.Canceled within 250ms of the cancel,
//   - an injected worker panic becomes exactly one BatchResult incident
//     (the process never dies),
//   - an injected delay plus a per-name budget produces a degraded retry
//     recorded with reason "degraded", matching obs counters and trace
//     events,
//   - an attached-but-ruleless registry changes nothing on the clean path,
//   - a seeded mid-batch cancel yields a partial BatchResult that is a
//     consistent subset of the full run, with zero incidents.
package distinct_test

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"distinct"
	"distinct/internal/core"
	"distinct/internal/dblp"
	"distinct/internal/fault"
	"distinct/internal/obs/trace"
)

var chaosSeed = flag.Int64("chaos.seed", 1, "seed driving the deterministic fault schedules")

// chaosMinRefs keeps every generated ambiguous name in the batch work list.
const chaosMinRefs = 8

// chaosWorld memoizes a reduced world: big enough that every pipeline stage
// (blocking, per-block similarities, clustering) runs, small enough that the
// suite stays fast under -race.
var chaosWorldState struct {
	once sync.Once
	w    *dblp.World
	err  error
}

func chaosWorld(t *testing.T) *dblp.World {
	t.Helper()
	chaosWorldState.once.Do(func() {
		cfg := dblp.DefaultConfig()
		cfg.Communities = 4
		cfg.AuthorsPerCommunity = 60
		cfg.PapersPerAuthor = 3
		cfg.Ambiguous = []dblp.AmbiguousName{
			{Name: "Wei Wang", RefsPerAuthor: []int{14, 9, 6}},
			{Name: "Lei Wang", RefsPerAuthor: []int{7, 5}},
			{Name: "Bin Yu", RefsPerAuthor: []int{6, 4}},
		}
		chaosWorldState.w, chaosWorldState.err = dblp.Generate(cfg)
	})
	if chaosWorldState.err != nil {
		t.Fatal(chaosWorldState.err)
	}
	return chaosWorldState.w
}

func chaosConfig(w *dblp.World, workers int, reg *distinct.Registry, tr *distinct.Trace) distinct.Config {
	return distinct.Config{
		RefRelation: dblp.ReferenceRelation,
		RefAttr:     dblp.ReferenceAttr,
		SkipExpand:  []string{dblp.TitleAttr},
		Train: distinct.TrainOptions{
			NumPositive: 150, NumNegative: 150,
			Exclude: w.AmbiguousNames(), Seed: 1,
		},
		Workers: workers,
		Metrics: reg,
		Trace:   tr,
	}
}

// Shared trained engines. The sequential one makes the stage observing a
// cancel deterministic; the parallel one exercises worker scheduling.
var chaosEngines struct {
	sync.Mutex
	seq *distinct.Engine
	par *distinct.Engine
}

func chaosEngine(t *testing.T, cache **distinct.Engine, workers int) *distinct.Engine {
	t.Helper()
	chaosEngines.Lock()
	defer chaosEngines.Unlock()
	if *cache != nil {
		return *cache
	}
	w := chaosWorld(t)
	eng, err := distinct.Open(w.DB, chaosConfig(w, workers, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Train(); err != nil {
		t.Fatal(err)
	}
	*cache = eng
	return eng
}

func chaosSeqEngine(t *testing.T) *distinct.Engine { return chaosEngine(t, &chaosEngines.seq, 1) }
func chaosParEngine(t *testing.T) *distinct.Engine { return chaosEngine(t, &chaosEngines.par, 0) }

// newInstrumentedEngine builds a trained engine with its own metrics
// registry and trace, for tests asserting incident counters and events.
func newInstrumentedEngine(t *testing.T) (*distinct.Engine, *distinct.Registry, *distinct.Trace) {
	t.Helper()
	w := chaosWorld(t)
	reg := distinct.NewMetrics()
	tr := distinct.NewTrace(0)
	eng, err := distinct.Open(w.DB, chaosConfig(w, 0, reg, tr))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Train(); err != nil {
		t.Fatal(err)
	}
	return eng, reg, tr
}

// incidentEvents counts "incident" trace events, optionally filtered by
// reason.
func incidentEvents(n *trace.SpanNode, reason string) int {
	total := 0
	for _, ev := range n.Events {
		if ev.Name == "incident" && (reason == "" || fmt.Sprint(ev.Attrs["reason"]) == reason) {
			total++
		}
	}
	for _, c := range n.Children {
		total += incidentEvents(c, reason)
	}
	return total
}

// TestChaosCancelEveryStage cancels the context from inside every injection
// point in the catalog and asserts the stage-wrapped context.Canceled comes
// back within the 250ms latency bound. Workers=1 pins which stage observes
// the cancel, so the asserted stage name is deterministic.
func TestChaosCancelEveryStage(t *testing.T) {
	w := chaosWorld(t)
	const (
		phaseOpen = iota
		phaseTrain
		phaseBatch
		phasePathSims // PathSimilaritiesCtx, the experiments-harness entry point
	)
	cases := []struct {
		point string // injection point whose first hit triggers the cancel
		stage string // stage name the returned error must carry
		phase int
	}{
		{"core.expand", "expand", phaseOpen},
		{"core.enumerate", "enumerate", phaseOpen},
		{"core.trainset", "trainset", phaseTrain},
		{"core.features", "features", phaseTrain},
		{"core.train_svm", "train_svm", phaseTrain},
		{"core.batch", "batch", phaseBatch},
		{"sim.prefetch", "prefetch", phaseBatch},
		{"core.blocks", "blocks", phaseBatch},
		{"core.path_sims", "path_sims", phasePathSims},
		{"core.similarities", "similarities", phaseBatch},
		{"core.similarities.row", "similarities", phaseBatch},
		{"core.cluster", "cluster", phaseBatch},
		// Inside the agglomeration merge loop (between merges), not just at
		// the cluster stage boundary.
		{"cluster.merge", "cluster", phaseBatch},
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var firedAt time.Time
			f := fault.NewRegistry(*chaosSeed)
			f.Set(tc.point, fault.Rule{OnHit: 1, Hook: func() {
				firedAt = time.Now()
				cancel()
			}})
			fctx := fault.With(ctx, f)

			var err error
			switch tc.phase {
			case phaseOpen:
				_, err = distinct.OpenCtx(fctx, w.DB, chaosConfig(w, 1, nil, nil))
			case phaseTrain:
				eng, oerr := distinct.Open(w.DB, chaosConfig(w, 1, nil, nil))
				if oerr != nil {
					t.Fatal(oerr)
				}
				_, err = eng.TrainCtx(fctx)
			case phaseBatch:
				_, err = chaosSeqEngine(t).DisambiguateAllCtx(fctx, distinct.BatchOptions{MinRefs: chaosMinRefs})
			case phasePathSims:
				ceng, oerr := core.NewEngineCtx(context.Background(), w.DB, core.Config{
					RefRelation: dblp.ReferenceRelation,
					RefAttr:     dblp.ReferenceAttr,
					SkipExpand:  []string{dblp.TitleAttr},
					Workers:     1,
				})
				if oerr != nil {
					t.Fatal(oerr)
				}
				_, err = ceng.PathSimilaritiesCtx(fctx, ceng.RefsForName("Wei Wang"))
			}
			elapsed := time.Since(firedAt)

			if firedAt.IsZero() {
				t.Fatalf("injection point %s was never hit (err = %v)", tc.point, err)
			}
			if err == nil {
				t.Fatalf("no error after cancelling at %s", tc.point)
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("error does not wrap context.Canceled: %v", err)
			}
			if !strings.Contains(err.Error(), tc.stage) {
				t.Errorf("error %q does not name stage %q", err, tc.stage)
			}
			if elapsed > 250*time.Millisecond {
				t.Errorf("cancellation at %s took %v to surface, want <= 250ms", tc.point, elapsed)
			}
		})
	}
}

// TestChaosPanicIsolation injects a panic into one name's clustering stage
// and asserts the batch still completes, with the panic converted into
// exactly one incident and the name kept as one conservative group.
func TestChaosPanicIsolation(t *testing.T) {
	eng, reg, tr := newInstrumentedEngine(t)
	full, err := eng.DisambiguateAll(chaosMinRefs)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Incidents) != 0 {
		t.Fatalf("clean run produced incidents: %+v", full.Incidents)
	}

	f := fault.NewRegistry(*chaosSeed)
	f.Set("core.cluster", fault.Rule{OnHit: 1, Panic: "injected cluster panic"})
	res, err := eng.DisambiguateAllCtx(fault.With(context.Background(), f),
		distinct.BatchOptions{MinRefs: chaosMinRefs})
	if err != nil {
		t.Fatalf("batch must complete despite a worker panic, got: %v", err)
	}
	if res.NamesExamined != full.NamesExamined {
		t.Errorf("names examined = %d, want %d (panicked name must still be accounted)",
			res.NamesExamined, full.NamesExamined)
	}
	if len(res.Incidents) != 1 {
		t.Fatalf("incidents = %+v, want exactly one", res.Incidents)
	}
	inc := res.Incidents[0]
	if inc.Reason != distinct.IncidentPanic {
		t.Errorf("incident reason = %q, want %q", inc.Reason, distinct.IncidentPanic)
	}
	if inc.Stage != "cluster" {
		t.Errorf("incident stage = %q, want cluster", inc.Stage)
	}
	if inc.Name == "" || !strings.Contains(inc.Err, "injected cluster panic") || inc.Elapsed <= 0 {
		t.Errorf("incident not fully recorded: %+v", inc)
	}
	if got := len(f.Firings()); got != 1 {
		t.Errorf("fault firings = %d, want 1", got)
	}

	c := reg.Snapshot().Counters
	if c["batch.incidents"] != 1 || c["batch.incident_panic"] != 1 {
		t.Errorf("incident counters = incidents:%d panic:%d, want 1/1",
			c["batch.incidents"], c["batch.incident_panic"])
	}
	tr.Finish()
	if n := incidentEvents(tr.Tree(), "panic"); n != 1 {
		t.Errorf("panic incident trace events = %d, want 1", n)
	}
}

// TestChaosMergeLoopFault fails one name from inside the agglomeration
// merge loop (the cluster.merge fault point, mid-run rather than at the
// stage boundary) and asserts the batch isolates it as a single
// cluster-stage error incident — and that the very next clean run over the
// same engine is bit-identical to a never-faulted run, i.e. the aborted
// agglomeration leaked no scratch state into the pool.
func TestChaosMergeLoopFault(t *testing.T) {
	eng, reg, _ := newInstrumentedEngine(t)
	full, err := eng.DisambiguateAll(chaosMinRefs)
	if err != nil {
		t.Fatal(err)
	}

	f := fault.NewRegistry(*chaosSeed)
	f.Set("cluster.merge", fault.Rule{OnHit: 2, Err: fault.ErrInjected})
	res, err := eng.DisambiguateAllCtx(fault.With(context.Background(), f),
		distinct.BatchOptions{MinRefs: chaosMinRefs})
	if err != nil {
		t.Fatalf("batch must complete despite the merge-loop fault, got: %v", err)
	}
	if len(res.Incidents) != 1 {
		t.Fatalf("incidents = %+v, want exactly one", res.Incidents)
	}
	inc := res.Incidents[0]
	if inc.Reason != distinct.IncidentError {
		t.Errorf("incident reason = %q, want %q", inc.Reason, distinct.IncidentError)
	}
	if inc.Stage != "cluster" {
		t.Errorf("incident stage = %q, want cluster", inc.Stage)
	}
	if !strings.Contains(inc.Err, "cluster.merge") {
		t.Errorf("incident error %q does not name the cluster.merge point", inc.Err)
	}
	c := reg.Snapshot().Counters
	if c["batch.incident_error"] != 1 {
		t.Errorf("batch.incident_error = %d, want 1", c["batch.incident_error"])
	}

	clean, err := eng.DisambiguateAll(chaosMinRefs)
	if err != nil {
		t.Fatal(err)
	}
	if clean.NamesExamined != full.NamesExamined || !reflect.DeepEqual(clean.Split, full.Split) {
		t.Error("clean run after the merge-loop fault differs from the never-faulted run")
	}
}

// TestChaosDeadlineDegrades delays one name past its per-name budget and
// asserts the degraded retry completes the name, recorded with reason
// "degraded" plus the matching counter and trace event.
func TestChaosDeadlineDegrades(t *testing.T) {
	eng, reg, tr := newInstrumentedEngine(t)
	resemW, walkW := eng.Weights()
	nonzero := 0
	for i := range resemW {
		if resemW[i] > 0 || walkW[i] > 0 {
			nonzero++
		}
	}
	if nonzero < 2 {
		t.Skipf("only %d weighted join paths; the degraded view cannot cut any", nonzero)
	}

	f := fault.NewRegistry(*chaosSeed)
	f.Set("core.similarities", fault.Rule{OnHit: 1, Delay: 10 * time.Second})
	res, err := eng.DisambiguateAllCtx(fault.With(context.Background(), f),
		distinct.BatchOptions{
			MinRefs:     chaosMinRefs,
			NameTimeout: time.Second,
			// One fewer path than the engine uses, so the retry genuinely
			// runs on a reduced path set.
			DegradedPaths: nonzero - 1,
		})
	if err != nil {
		t.Fatalf("batch must complete despite the per-name timeout, got: %v", err)
	}
	if len(res.Incidents) != 1 {
		t.Fatalf("incidents = %+v, want exactly one", res.Incidents)
	}
	inc := res.Incidents[0]
	if inc.Reason != distinct.IncidentDegraded {
		t.Fatalf("incident reason = %q, want %q (%+v)", inc.Reason, distinct.IncidentDegraded, inc)
	}
	if inc.Stage != "similarities" {
		t.Errorf("incident stage = %q, want similarities", inc.Stage)
	}
	if !strings.Contains(inc.Err, context.DeadlineExceeded.Error()) {
		t.Errorf("incident error %q does not carry the deadline cause", inc.Err)
	}
	if inc.Elapsed < time.Second {
		t.Errorf("incident elapsed = %v, want >= the 1s budget it blew", inc.Elapsed)
	}

	c := reg.Snapshot().Counters
	if c["batch.incidents"] != 1 || c["batch.incident_degraded"] != 1 {
		t.Errorf("incident counters = incidents:%d degraded:%d, want 1/1",
			c["batch.incidents"], c["batch.incident_degraded"])
	}
	tr.Finish()
	if n := incidentEvents(tr.Tree(), "degraded"); n != 1 {
		t.Errorf("degraded incident trace events = %d, want 1", n)
	}
}

// TestChaosFaultsOffIdentical asserts the off switch: a context carrying a
// registry with no rules, plus a generous per-name budget, must reproduce
// the plain DisambiguateAll outcome exactly. (Bit-identity of the clean path
// against committed output is TestGoldenE2E's job.)
func TestChaosFaultsOffIdentical(t *testing.T) {
	eng := chaosParEngine(t)
	a, err := eng.DisambiguateAll(chaosMinRefs)
	if err != nil {
		t.Fatal(err)
	}
	f := fault.NewRegistry(*chaosSeed)
	b, err := eng.DisambiguateAllCtx(fault.With(context.Background(), f),
		distinct.BatchOptions{MinRefs: chaosMinRefs, NameTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Incidents) != 0 || len(b.Incidents) != 0 {
		t.Fatalf("clean runs produced incidents: %+v / %+v", a.Incidents, b.Incidents)
	}
	if a.NamesExamined != b.NamesExamined {
		t.Errorf("names examined differ: %d vs %d", a.NamesExamined, b.NamesExamined)
	}
	if !reflect.DeepEqual(a.Split, b.Split) {
		t.Errorf("split results differ between plain and faults-off ctx run")
	}
	if got := len(f.Firings()); got != 0 {
		t.Errorf("ruleless registry fired %d times", got)
	}
}

// TestChaosMidBatchCancelPartial cancels at a seeded pseudo-random
// similarity row mid-batch and asserts the partial-results contract: the
// partial BatchResult is a consistent subset of the full run's, cancellation
// is not an incident, and the error wraps context.Canceled.
func TestChaosMidBatchCancelPartial(t *testing.T) {
	eng := chaosParEngine(t)
	full, err := eng.DisambiguateAll(chaosMinRefs)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f := fault.NewRegistry(*chaosSeed)
	// The firing row is a pure function of (seed, hit number): a failing
	// seed replays the same cancellation point.
	f.Set("core.similarities.row", fault.Rule{Prob: 0.02, Hook: cancel})
	partial, err := eng.DisambiguateAllCtx(fault.With(ctx, f),
		distinct.BatchOptions{MinRefs: chaosMinRefs})

	if len(f.Firings()) == 0 {
		// This seed's schedule drained the batch without firing; the run
		// must then be complete and clean.
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(full.Split, partial.Split) {
			t.Error("un-cancelled run differs from the full run")
		}
		return
	}
	if err == nil {
		t.Fatal("no error after mid-batch cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	if partial == nil {
		t.Fatal("partial BatchResult must be returned alongside the cancellation error")
	}
	if len(partial.Incidents) != 0 {
		t.Errorf("parent cancellation must not create incidents: %+v", partial.Incidents)
	}
	if partial.NamesExamined > full.NamesExamined {
		t.Errorf("partial examined %d names, full run only %d", partial.NamesExamined, full.NamesExamined)
	}
	fullGroups := make(map[string][][]distinct.TupleID, len(full.Split))
	for _, sp := range full.Split {
		fullGroups[sp.Name] = sp.Groups
	}
	for _, sp := range partial.Split {
		want, ok := fullGroups[sp.Name]
		if !ok {
			t.Errorf("partial split name %q does not split in the full run", sp.Name)
			continue
		}
		if !reflect.DeepEqual(sp.Groups, want) {
			t.Errorf("groups of %q differ between partial and full run", sp.Name)
		}
	}
}
