package distinct_test

import (
	"testing"

	"distinct"
	"distinct/internal/dblp"
)

func publicWorld(t testing.TB) *dblp.World {
	t.Helper()
	cfg := dblp.DefaultConfig()
	cfg.Communities = 4
	cfg.AuthorsPerCommunity = 50
	cfg.PapersPerAuthor = 3
	cfg.Ambiguous = []dblp.AmbiguousName{
		{Name: "Wei Wang", RefsPerAuthor: []int{10, 7}},
	}
	w, err := dblp.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPublicAPIEndToEnd(t *testing.T) {
	w := publicWorld(t)
	eng, err := distinct.Open(w.DB, distinct.Config{
		RefRelation: "Publish",
		RefAttr:     "author",
		SkipExpand:  []string{"Publications.title"},
		Train: distinct.TrainOptions{
			NumPositive: 100, NumNegative: 100, Seed: 1,
			Exclude: []string{"Wei Wang"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Train()
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumPositive != 100 || rep.NumPaths != len(eng.Paths()) {
		t.Errorf("report %+v inconsistent", rep)
	}
	groups, err := eng.Disambiguate("Wei Wang")
	if err != nil {
		t.Fatal(err)
	}
	var gold [][]distinct.TupleID
	for _, c := range w.GoldClusters("Wei Wang") {
		gold = append(gold, eng.MapRefs(c))
	}
	m, err := distinct.Score(groups, gold)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Wei Wang via public API: %s", m)
	if m.F1 < 0.6 {
		t.Errorf("public API pipeline f-measure %v", m.F1)
	}
	// Refs and DB round-trip.
	refs := eng.Refs("Wei Wang")
	if len(refs) != 17 {
		t.Errorf("refs = %d, want 17", len(refs))
	}
	for _, r := range refs {
		if eng.DB().Tuple(r).Val("author") != "Wei Wang" {
			t.Fatal("Refs returned a tuple with the wrong name")
		}
	}
	rw, ww := eng.Weights()
	if len(rw) != len(eng.Paths()) || len(ww) != len(rw) {
		t.Error("weights/paths mismatch")
	}
}

func TestPublicSchemaBuilders(t *testing.T) {
	users := distinct.MustRelationSchema("Users", distinct.Attribute{Name: "name", Key: true})
	reviews := distinct.MustRelationSchema("Reviews",
		distinct.Attribute{Name: "user", FK: "Users"},
		distinct.Attribute{Name: "product", FK: "Products"},
	)
	products := distinct.MustRelationSchema("Products",
		distinct.Attribute{Name: "id", Key: true},
		distinct.Attribute{Name: "brand"},
	)
	schema, err := distinct.NewSchema(users, reviews, products)
	if err != nil {
		t.Fatal(err)
	}
	db := distinct.NewDatabase(schema)
	db.MustInsert("Users", "alice")
	db.MustInsert("Products", "p1", "Acme")
	db.MustInsert("Products", "p2", "Acme")
	db.MustInsert("Reviews", "alice", "p1")
	db.MustInsert("Reviews", "alice", "p2")

	eng, err := distinct.Open(db, distinct.Config{
		RefRelation:  "Reviews",
		RefAttr:      "user",
		Unsupervised: true,
		MinSim:       0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := eng.Disambiguate("alice")
	if err != nil {
		t.Fatal(err)
	}
	// Both reviews share the Acme brand linkage, so they group together.
	if len(groups) != 1 || len(groups[0]) != 2 {
		t.Errorf("alice groups = %v", groups)
	}
	if _, err := distinct.NewRelationSchema("", distinct.Attribute{Name: "x"}); err == nil {
		t.Error("invalid schema accepted through public API")
	}
	if _, err := distinct.NewSchema(users, users); err == nil {
		t.Error("duplicate relation accepted through public API")
	}
}

func TestPublicConstants(t *testing.T) {
	if distinct.DefaultMinSim <= 0 {
		t.Error("DefaultMinSim must be positive")
	}
	measures := []distinct.Measure{
		distinct.Combined, distinct.ResemblanceOnly, distinct.RandomWalkOnly,
		distinct.CombinedArithmetic, distinct.SingleLink, distinct.CompleteLink,
	}
	seen := map[distinct.Measure]bool{}
	for _, m := range measures {
		if seen[m] {
			t.Fatalf("duplicate measure constant %v", m)
		}
		seen[m] = true
	}
}
