// End-to-end golden regression test: the full supervised pipeline — world
// generation, training, batch disambiguation — on a fixed seed must keep
// producing byte-identical group assignments and pipeline counters. Any
// intentional behaviour change regenerates the golden file with
//
//	go test -run TestGoldenE2E -update
//
// and the diff of testdata/golden_e2e.json becomes part of the review.
package distinct_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"distinct"
	"distinct/internal/dblp"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_e2e.json from the current pipeline output")

// goldenE2E is the committed shape: the batch outcome plus every obs
// counter. Only counters are compared — gauges, histogram sums, and stage
// timings carry wall-clock values that vary run to run; counters are item
// counts the pipeline must reproduce exactly.
type goldenE2E struct {
	NamesExamined int                   `json:"names_examined"`
	Groups        map[string][][]string `json:"groups"` // split name -> groups of paper keys
	Counters      map[string]int64      `json:"counters"`
}

const goldenPath = "testdata/golden_e2e.json"

// goldenWorld mirrors BenchmarkDisambiguateAll's scaled world: large enough
// to exercise training, blocking, and batch clustering; small enough to run
// under -race in CI.
func goldenRun(t *testing.T) goldenE2E {
	t.Helper()
	cfg := dblp.DefaultConfig()
	cfg.Communities = 6
	cfg.AuthorsPerCommunity = 50
	w, err := dblp.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := distinct.NewMetrics()
	eng, err := distinct.Open(w.DB, distinct.Config{
		RefRelation: dblp.ReferenceRelation,
		RefAttr:     dblp.ReferenceAttr,
		SkipExpand:  []string{dblp.TitleAttr},
		Train: distinct.TrainOptions{
			NumPositive: 300, NumNegative: 300,
			Exclude: w.AmbiguousNames(), Seed: 1,
		},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Train(); err != nil {
		t.Fatal(err)
	}
	res, err := eng.DisambiguateAll(20)
	if err != nil {
		t.Fatal(err)
	}
	// The clean path must be incident-free: no timeouts, degradations, or
	// recovered panics — and thus no batch.incident* counters either (the
	// counter comparison below would flag them as unrecorded additions).
	if len(res.Incidents) != 0 {
		t.Fatalf("clean run produced %d incidents, first: %+v", len(res.Incidents), res.Incidents[0])
	}

	got := goldenE2E{
		NamesExamined: res.NamesExamined,
		Groups:        make(map[string][][]string, len(res.Split)),
		Counters:      reg.Snapshot().Counters,
	}
	for _, sp := range res.Split {
		groups := make([][]string, len(sp.Groups))
		for i, g := range sp.Groups {
			keys := make([]string, len(g))
			for j, r := range g {
				keys[j] = eng.DB().Tuple(r).Val("paper-key")
			}
			sort.Strings(keys)
			groups[i] = keys
		}
		got.Groups[sp.Name] = groups
	}
	return got
}

func TestGoldenE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	got := goldenRun(t)

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten: %s (%d split names, %d counters)",
			goldenPath, len(got.Groups), len(got.Counters))
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	var want goldenE2E
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("golden file is not valid JSON: %v", err)
	}

	if got.NamesExamined != want.NamesExamined {
		t.Errorf("names examined = %d, want %d", got.NamesExamined, want.NamesExamined)
	}
	// Group assignments: exact match per name, and no extra/missing names.
	for name, wantGroups := range want.Groups {
		gotGroups, ok := got.Groups[name]
		if !ok {
			t.Errorf("name %q no longer splits", name)
			continue
		}
		if !reflect.DeepEqual(gotGroups, wantGroups) {
			t.Errorf("groups of %q changed:\n got %v\nwant %v", name, gotGroups, wantGroups)
		}
	}
	for name := range got.Groups {
		if _, ok := want.Groups[name]; !ok {
			t.Errorf("name %q now splits but is not in the golden file", name)
		}
	}
	// Counters: every golden counter must be reproduced exactly, and no new
	// counters may appear unrecorded (adding instrumentation means -update).
	for name, wantV := range want.Counters {
		if gotV, ok := got.Counters[name]; !ok || gotV != wantV {
			t.Errorf("counter %s = %d, want %d", name, gotV, wantV)
		}
	}
	for name := range got.Counters {
		if _, ok := want.Counters[name]; !ok {
			t.Errorf("new counter %s not in golden file (run -update)", name)
		}
	}
}
