// Command distinctd serves DISTINCT disambiguation over HTTP: it loads (or
// generates) a world, trains the join-path weights once, and answers
//
//	GET  /v1/name/{name}        groups for one name
//	POST /v1/batch              {"names":[...]} -> per-name results
//	GET  /v1/names?min_refs=N   the name universe
//	GET  /healthz               200 while serving, 503 while draining
//	GET  /metrics, /debug/...   observability (never drain-gated)
//
// Requests for the same (name, database version) are coalesced into one
// engine computation; clean results are cached in a byte-bounded LRU keyed
// on the database version; a semaphore pool sheds overload as 429 with
// Retry-After. See DESIGN.md §13.
//
// SIGINT/SIGTERM start a graceful drain: /healthz flips to 503 (load
// balancers stop routing), in-flight requests finish, new ones are refused,
// and the listener shuts down — bounded by -drain-timeout.
//
// Usage:
//
//	distinctd -world world.json [-addr :8080]
//	distinctd -demo               # generate a synthetic world instead
//	          [-train N] [-seed S] [-unsupervised]
//	          [-cache-bytes B]    result-cache budget (0 default 16MiB, -1 off)
//	          [-concurrency N]    engine computation slots (0 = GOMAXPROCS)
//	          [-max-queue N]      admission queue depth (0 = 4x concurrency)
//	          [-name-timeout D]   per-request engine budget (degrade past it)
//	          [-drain-timeout D]  max time to wait for in-flight work at exit
//	          [-access-log]       structured access logs (sampled clean 200s)
//	          [-flight N]         flight-recorder ring size (/debug/requests)
//	          [-tail-slow D]      tail-sampling latency threshold
//	          [-tail-dir DIR]     per-request trace artifacts for the tail
//	          [-max-stale D]      stale-while-revalidate window (0 default 30s, -1s off)
//	          [-quota-rps R]      per-client token-bucket rate (0 disables quotas)
//	          [-quota-burst N]    per-client bucket capacity (0 = 2x rps, min 8)
//	          [-quota-concurrency N]  per-client in-flight cap (0 = unlimited)
//	          [-brownout]         load-shed ladder + retry budget (default on)
//	          [-admin-bump]       mount POST /debug/bump (overload drills only)
//
// Every response carries an X-Request-ID (client-echoed or minted) and, when
// the client sent a W3C traceparent, a traceparent reply with this server's
// span id. /debug/requests shows the flight recorder: the last N requests
// plus the K slowest and the recent errors, with trace artifact paths when
// -tail-dir is set. See DESIGN.md §14.
//
// Under overload the server degrades in order rather than falling off a
// cliff: stale-while-revalidate keeps hot names answering across version
// bumps, per-client quotas (keyed by X-Api-Key, else remote host) throttle
// hot clients with 429 before they can starve quiet ones, and the brownout
// ladder walks through forced-degraded computes, frozen revalidation, and
// finally 503 shedding of uncached lookups — recovering with hysteresis.
// /healthz?verbose=1 reports the ladder state; /debug/quotas the per-client
// table. See DESIGN.md §15.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"distinct"
	"distinct/internal/dataio"
	"distinct/internal/dblp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "distinctd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", "localhost:8080", "listen address")
		worldPath    = flag.String("world", "", "world file written by dblpgen")
		demo         = flag.Bool("demo", false, "generate a synthetic demo world instead of loading one")
		trainN       = flag.Int("train", 300, "training pairs per class")
		seed         = flag.Int64("seed", 1, "training-set sampling seed")
		unsupervised = flag.Bool("unsupervised", false, "skip SVM weight learning")
		cacheBytes   = flag.Int64("cache-bytes", 0, "result-cache budget in bytes (0 = 16MiB default, negative disables)")
		concurrency  = flag.Int("concurrency", 0, "concurrent engine computations (0 = GOMAXPROCS)")
		maxQueue     = flag.Int("max-queue", 0, "admission queue depth before 429 (0 = 4x concurrency)")
		nameTimeout  = flag.Duration("name-timeout", 2*time.Second, "per-request engine budget; past it the answer degrades")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown bound for in-flight requests")
		renderAttr   = flag.String("render-attr", "paper-key", "reference attribute rendered into response groups")
		accessLog    = flag.Bool("access-log", false, "emit structured access logs to stderr (sampled on clean 200s)")
		accessSample = flag.Int("access-log-sample", 0, "log one clean fast 200 in N (0 = default 100, 1 = every request)")
		flightN      = flag.Int("flight", 0, "flight-recorder ring size at /debug/requests (0 = default 256, negative disables)")
		tailSlow     = flag.Duration("tail-slow", 0, "latency past which a request is tail-sampled (0 = default 500ms)")
		tailDir      = flag.String("tail-dir", "", "directory for tail-sampled per-request trace artifacts (empty disables)")
		sloTarget    = flag.Float64("slo-target", 0, "availability objective for the burn-rate gauge (0 = default 0.99)")
		batchFanout  = flag.Int("batch-fanout", 0, "concurrent lookups per batch request (0 = default 8, capped at concurrency)")
		maxStale     = flag.Duration("max-stale", 0, "stale-while-revalidate window after a version bump (0 = default 30s, negative disables)")
		quotaRPS     = flag.Float64("quota-rps", 0, "per-client token-bucket refill rate; 0 disables per-client quotas")
		quotaBurst   = flag.Int("quota-burst", 0, "per-client bucket capacity (0 = 2x quota-rps, min 8)")
		quotaConc    = flag.Int("quota-concurrency", 0, "per-client in-flight request cap (0 = unlimited)")
		brownout     = flag.Bool("brownout", true, "enable the brownout load-shed ladder and retry budget")
		adminBump    = flag.Bool("admin-bump", false, "mount POST /debug/bump (synthetic version bump for overload drills)")
	)
	flag.Parse()

	lg := slog.New(slog.NewTextHandler(os.Stderr, nil))

	var (
		db        *distinct.Database
		ambiguous []string
	)
	switch {
	case *worldPath != "":
		w, err := dataio.LoadWorldFile(*worldPath)
		if err != nil {
			return err
		}
		db = w.DB
		ambiguous = w.AmbiguousNames()
		lg.Info("world loaded", "path", *worldPath, "ambiguous_names", len(ambiguous))
	case *demo:
		cfg := dblp.DefaultConfig()
		cfg.Communities = 6
		cfg.AuthorsPerCommunity = 50
		w, err := dblp.Generate(cfg)
		if err != nil {
			return err
		}
		db = w.DB
		ambiguous = w.AmbiguousNames()
		lg.Info("demo world generated", "ambiguous_names", len(ambiguous))
	default:
		return fmt.Errorf("either -world or -demo is required")
	}

	// SIGINT/SIGTERM drive the graceful drain below; training also runs
	// under this context so a shutdown during startup aborts cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := distinct.NewMetrics()
	eng, err := distinct.OpenCtx(ctx, db, distinct.Config{
		RefRelation:  "Publish",
		RefAttr:      "author",
		SkipExpand:   []string{"Publications.title"},
		Unsupervised: *unsupervised,
		Train: distinct.TrainOptions{
			NumPositive: *trainN, NumNegative: *trainN,
			Exclude: ambiguous, Seed: *seed,
		},
		Metrics: reg,
	})
	if err != nil {
		return err
	}
	if !*unsupervised {
		t0 := time.Now()
		rep, err := eng.TrainCtx(ctx)
		if err != nil {
			return err
		}
		lg.Info("trained", "positive", rep.NumPositive, "negative", rep.NumNegative,
			"elapsed", time.Since(t0).Round(time.Millisecond))
	}

	if *tailDir != "" {
		if err := os.MkdirAll(*tailDir, 0o755); err != nil {
			return fmt.Errorf("tail-dir: %w", err)
		}
	}
	var accessLogger *slog.Logger
	if *accessLog {
		accessLogger = lg
	}
	api, err := distinct.NewAPIServer(distinct.APIOptions{
		Backend:          eng.APIBackend(*renderAttr),
		Obs:              reg,
		CacheBytes:       *cacheBytes,
		Concurrency:      *concurrency,
		MaxQueue:         *maxQueue,
		NameTimeout:      *nameTimeout,
		FlightRecords:    *flightN,
		TailSlow:         *tailSlow,
		TailDir:          *tailDir,
		AccessLog:        accessLogger,
		AccessLogSample:  *accessSample,
		SLOTarget:        *sloTarget,
		BatchFanout:      *batchFanout,
		MaxStale:         *maxStale,
		QuotaRPS:         *quotaRPS,
		QuotaBurst:       *quotaBurst,
		QuotaConcurrency: *quotaConc,
		Brownout:         *brownout,
		AllowBump:        *adminBump,
	})
	if err != nil {
		return err
	}
	defer api.Close()

	srv, err := distinct.ServeAPI(*addr, api)
	if err != nil {
		return err
	}
	lg.Info("serving", "addr", srv.Addr(),
		"cache_bytes", *cacheBytes, "concurrency", *concurrency, "name_timeout", *nameTimeout,
		"max_stale", *maxStale, "quota_rps", *quotaRPS, "brownout", *brownout)

	<-ctx.Done()
	stop() // a second signal now kills the process the default way

	// Drain: flip /healthz to 503, refuse new /v1 work, wait for in-flight
	// requests, then close the listener. Both phases share one deadline.
	lg.Info("draining", "timeout", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := api.Drain(dctx); err != nil {
		lg.Warn("drain incomplete", "err", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	lg.Info("stopped")
	return nil
}
