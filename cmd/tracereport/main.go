// Command tracereport renders a human-readable run report from the span
// tree that cmd/distinct or cmd/experiments wrote with -tracetree, and
// optionally the metrics snapshot written with -metrics. It also reads the
// tail-sampled per-request traces distinctd writes under -tail-dir (same
// distinct-trace/1 format), one report per file.
//
// Usage:
//
//	tracereport -trace tree.json [-metrics metrics.json] [-topk N]
//	tracereport traces/req-*.json        # per-request tail artifacts
//
// The report shows the span tree with durations, the slowest per-name
// disambiguations, the merge timeline with cut statistics, and the trained
// join-path weights. With -metrics it appends the counter, histogram
// (p50/p95/p99) and stage tables of the observability snapshot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"distinct/internal/obs"
	"distinct/internal/obs/trace"
)

func main() {
	var (
		tracePath   = flag.String("trace", "", "span-tree JSON written by -tracetree")
		metricsPath = flag.String("metrics", "", "metrics snapshot JSON written by -metrics (optional)")
		topK        = flag.Int("topk", 10, "number of slowest names to list")
	)
	flag.Parse()

	paths := flag.Args()
	if *tracePath != "" {
		// The flag form stays first so -metrics appends to its report.
		paths = append([]string{*tracePath}, paths...)
	}
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "tracereport: -trace or at least one trace file argument is required")
		flag.Usage()
		os.Exit(2)
	}
	for i, path := range paths {
		if len(paths) > 1 {
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("== %s ==\n\n", path)
		}
		f, err := trace.ReadFileJSON(path)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteReport(os.Stdout, f, trace.ReportOptions{TopK: *topK}); err != nil {
			fatal(err)
		}
	}

	if *metricsPath != "" {
		data, err := os.ReadFile(*metricsPath)
		if err != nil {
			fatal(err)
		}
		var snap obs.Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *metricsPath, err))
		}
		fmt.Println()
		fmt.Println("## Metrics")
		fmt.Println()
		if err := snap.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracereport:", err)
	os.Exit(1)
}
