// Command objdist runs object distinction on arbitrary relational data: a
// JSON schema plus one TSV file per relation. Nothing about it is specific
// to bibliographies — point it at any database whose references share names
// (products, songs, people) and it will split them by linkage structure.
//
// Usage:
//
//	objdist -schema schema.json -datadir dir -refrel Publish -refattr author \
//	        [-name "Wei Wang" | -batch N] [-minsim X] [-tune] [-unsupervised]
//	        [-skip "Papers.title,..."]
//
// The data directory must contain <Relation>.tsv for every relation of the
// schema, each with a header row naming its columns.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"distinct"
	"distinct/internal/dataio"
	"distinct/internal/linkage"
)

func main() {
	var (
		schemaPath = flag.String("schema", "schema.json", "JSON schema document")
		dataDir    = flag.String("datadir", ".", "directory holding <Relation>.tsv files")
		refRel     = flag.String("refrel", "", "relation holding the references")
		refAttr    = flag.String("refattr", "", "foreign-key attribute holding the shared names")
		name       = flag.String("name", "", "one name to disambiguate")
		batch      = flag.Int("batch", 0, "disambiguate every name with at least this many references")
		minSim     = flag.Float64("minsim", 0, "clustering threshold (0 = default)")
		tune       = flag.Bool("tune", false, "auto-tune min-sim on rare-name pairs first")
		unsup      = flag.Bool("unsupervised", false, "skip SVM weight learning")
		skip       = flag.String("skip", "", "comma-separated Relation.attr list to exclude from expansion")
		trainN     = flag.Int("train", 500, "training pairs per class")
		seed       = flag.Int64("seed", 1, "sampling seed")
		dupNames   = flag.Int("dupnames", 0, "instead: find the top-N differently written names that may denote one object")
	)
	flag.Parse()
	if *refRel == "" || *refAttr == "" {
		fatal(fmt.Errorf("-refrel and -refattr are required"))
	}
	if *name == "" && *batch == 0 && *dupNames == 0 {
		fatal(fmt.Errorf("give -name, -batch or -dupnames"))
	}

	sf, err := os.Open(*schemaPath)
	if err != nil {
		fatal(err)
	}
	schema, err := dataio.ParseSchema(sf)
	sf.Close()
	if err != nil {
		fatal(err)
	}

	db := distinct.NewDatabase(schema)
	for _, rs := range schema.Relations() {
		path := filepath.Join(*dataDir, rs.Name+".tsv")
		f, err := os.Open(path)
		if err != nil {
			fatal(fmt.Errorf("relation %s: %w", rs.Name, err))
		}
		n, err := dataio.LoadTSV(db, rs.Name, f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %s: %d tuples\n", path, n)
	}

	var skips []string
	if *skip != "" {
		skips = strings.Split(*skip, ",")
	}
	eng, err := distinct.Open(db, distinct.Config{
		RefRelation:  *refRel,
		RefAttr:      *refAttr,
		SkipExpand:   skips,
		Unsupervised: *unsup,
		MinSim:       *minSim,
		Train: distinct.TrainOptions{
			NumPositive: *trainN, NumNegative: *trainN, Seed: *seed,
		},
	})
	if err != nil {
		fatal(err)
	}
	if !*unsup {
		rep, err := eng.Train()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trained on %d+%d automatic pairs from %d rare names\n",
			rep.NumPositive, rep.NumNegative, rep.NumRareNames)
	}
	if *tune {
		res, err := eng.TuneMinSim(nil, 50, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("tuned min-sim = %g (f=%.3f over %d cases)\n", res.MinSim, res.F1, res.Cases)
	}

	if *dupNames > 0 {
		pairs, err := linkage.FindDuplicateNames(db, *refRel, *refAttr, linkage.Options{
			MinStringSim: 0.55,
			MaxPairs:     *dupNames,
			Verify:       eng.Affinity,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\ntop %d candidate duplicate names:\n", len(pairs))
		for _, p := range pairs {
			fmt.Printf("  %-30s %-30s string %.3f relational %.5f\n", p.A, p.B, p.StringSim, p.RelationalSim)
		}
		return
	}

	if *batch > 0 {
		res, err := eng.DisambiguateAll(*batch)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%d names examined, %d split:\n", res.NamesExamined, len(res.Split))
		for _, s := range res.Split {
			fmt.Printf("  %-30s -> %d objects\n", s.Name, len(s.Groups))
		}
		return
	}

	groups, err := eng.Disambiguate(*name)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n%q: %d references in %d groups\n", *name, len(eng.Refs(*name)), len(groups))
	for i, g := range groups {
		fmt.Printf("group %d:\n", i+1)
		for _, r := range g {
			fmt.Printf("  %s\n", strings.Join(eng.DB().Tuple(r).Vals, "\t"))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "objdist:", err)
	os.Exit(1)
}
