// Command dblpgen generates a synthetic DBLP-like bibliographic world with
// ground-truth author identities and saves it as JSON for later analysis
// with cmd/distinct or cmd/experiments.
//
// Usage:
//
//	dblpgen -out world.json [-seed N] [-communities N] [-authors N]
//	        [-papers F] [-stats]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"distinct/internal/dataio"
	"distinct/internal/dblp"
)

func main() {
	var (
		out     = flag.String("out", "world.json", "output file")
		seed    = flag.Int64("seed", 1, "generation seed")
		comms   = flag.Int("communities", 0, "override number of research communities")
		authors = flag.Int("authors", 0, "override authors per community")
		papers  = flag.Float64("papers", 0, "override mean papers per author")
		stats   = flag.Bool("stats", false, "print per-relation sizes and the ambiguous-name profile")
		tsvDir  = flag.String("tsv", "", "also export every relation as <Relation>.tsv into this directory (for cmd/objdist)")
	)
	flag.Parse()

	cfg := dblp.DefaultConfig()
	cfg.Seed = *seed
	if *comms > 0 {
		cfg.Communities = *comms
	}
	if *authors > 0 {
		cfg.AuthorsPerCommunity = *authors
	}
	if *papers > 0 {
		cfg.PapersPerAuthor = *papers
	}

	world, err := dblp.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	if err := dataio.SaveWorldFile(world, *out); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d identities, %d papers, %d references\n",
		*out, len(world.Identities), world.NumPapers(), world.NumReferences())

	if *tsvDir != "" {
		if err := os.MkdirAll(*tsvDir, 0o755); err != nil {
			fatal(err)
		}
		for _, rs := range world.DB.Schema.Relations() {
			path := filepath.Join(*tsvDir, rs.Name+".tsv")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := dataio.SaveTSV(world.DB, rs.Name, f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("TSV export written to %s\n", *tsvDir)
	}

	if *stats {
		fmt.Println()
		fmt.Print(world.DB.Stats())
		fmt.Println("ambiguous names:")
		for _, name := range world.AmbiguousNames() {
			fmt.Printf("  %-22s %2d authors %4d refs\n",
				name, len(world.GoldClusters(name)), len(world.Refs(name)))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dblpgen:", err)
	os.Exit(1)
}
