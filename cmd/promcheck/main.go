// Command promcheck validates Prometheus text exposition (format 0.0.4) on
// stdin: every sample line parses, every metric has a preceding # TYPE,
// histogram buckets are cumulative with a terminal +Inf bucket equal to
// _count, and no metric name appears in two TYPE blocks. CI pipes
// `curl -H 'Accept: text/plain' /metrics` through it after a load run.
//
// Exit status: 0 when the input is well-formed (a summary line is printed),
// 1 with one line per problem otherwise, 2 on empty input.
package main

import (
	"bufio"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

var (
	nameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$`)
	labelRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

type checker struct {
	problems []string

	types    map[string]string // metric family -> counter|gauge|histogram|summary|untyped
	seen     map[string]bool   // families with at least one sample
	lastType string            // family of the most recent TYPE line

	// Histogram state for the family currently being read.
	histFamily string
	buckets    []bucket
	histCount  float64
	hasCount   bool
}

type bucket struct {
	le    float64
	leRaw string
	count float64
}

func (c *checker) problemf(line int, format string, args ...any) {
	c.problems = append(c.problems, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

// family strips the histogram sample suffixes so _bucket/_sum/_count roll up
// to the TYPE'd family name.
func family(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if f, ok := strings.CutSuffix(name, suf); ok {
			return f
		}
	}
	return name
}

// flushHist validates the finished histogram family's bucket invariants.
func (c *checker) flushHist(line int) {
	if c.histFamily == "" {
		return
	}
	prev := -1.0
	prevCount := -1.0
	sawInf := false
	for _, b := range c.buckets {
		if prev >= 0 && b.le <= prev {
			c.problemf(line, "%s: bucket le=%q out of order", c.histFamily, b.leRaw)
		}
		if prevCount >= 0 && b.count < prevCount {
			c.problemf(line, "%s: bucket le=%q count %v below previous bucket %v (not cumulative)",
				c.histFamily, b.leRaw, b.count, prevCount)
		}
		prev, prevCount = b.le, b.count
		if b.leRaw == "+Inf" {
			sawInf = true
			if c.hasCount && b.count != c.histCount {
				c.problemf(line, "%s: +Inf bucket %v != _count %v", c.histFamily, b.count, c.histCount)
			}
		}
	}
	if len(c.buckets) > 0 && !sawInf {
		c.problemf(line, "%s: histogram without a +Inf bucket", c.histFamily)
	}
	c.histFamily = ""
	c.buckets = c.buckets[:0]
	c.histCount = 0
	c.hasCount = false
}

func (c *checker) typeLine(line int, rest string) {
	parts := strings.Fields(rest)
	if len(parts) != 2 {
		c.problemf(line, "malformed TYPE line: %q", rest)
		return
	}
	name, kind := parts[0], parts[1]
	if !nameRe.MatchString(name) {
		c.problemf(line, "invalid metric name %q", name)
	}
	switch kind {
	case "counter", "gauge", "histogram", "summary", "untyped":
	default:
		c.problemf(line, "unknown metric type %q for %s", kind, name)
	}
	if _, dup := c.types[name]; dup {
		c.problemf(line, "duplicate TYPE for %s", name)
	}
	if c.histFamily != "" && name != c.histFamily {
		c.flushHist(line)
	}
	c.types[name] = kind
	c.lastType = name
	if kind == "histogram" {
		c.histFamily = name
	}
}

func (c *checker) sampleLine(line int, text string) {
	m := sampleRe.FindStringSubmatch(text)
	if m == nil {
		c.problemf(line, "unparseable sample: %q", text)
		return
	}
	name, labels, value := m[1], m[2], m[3]
	v, err := strconv.ParseFloat(value, 64)
	if err != nil && value != "NaN" && value != "+Inf" && value != "-Inf" {
		c.problemf(line, "%s: bad value %q", name, value)
	}
	fam := family(name)
	kind, typed := c.types[fam]
	if !typed {
		// A histogram-suffixed name on a non-histogram family is its own
		// metric (e.g. a counter literally named x_count); re-check bare.
		if k2, ok := c.types[name]; ok {
			fam, kind, typed = name, k2, true
		}
	}
	if !typed {
		c.problemf(line, "%s: sample before any TYPE for %s", name, fam)
		return
	}
	c.seen[fam] = true

	labelMap := map[string]string{}
	if labels != "" {
		inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
		for _, pair := range splitLabels(inner) {
			lm := labelRe.FindStringSubmatch(pair)
			if lm == nil {
				c.problemf(line, "%s: malformed label %q", name, pair)
				continue
			}
			labelMap[lm[1]] = lm[2]
		}
	}

	if kind == "histogram" && fam == c.histFamily {
		switch {
		case strings.HasSuffix(name, "_bucket"):
			le, ok := labelMap["le"]
			if !ok {
				c.problemf(line, "%s: bucket without le label", name)
				return
			}
			lv, lerr := strconv.ParseFloat(le, 64)
			if le == "+Inf" {
				lv = inf()
			} else if lerr != nil {
				c.problemf(line, "%s: bad le %q", name, le)
				return
			}
			c.buckets = append(c.buckets, bucket{le: lv, leRaw: le, count: v})
		case strings.HasSuffix(name, "_count"):
			c.histCount = v
			c.hasCount = true
		}
	}
}

func inf() float64 { v, _ := strconv.ParseFloat("+Inf", 64); return v }

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func main() {
	c := &checker{types: map[string]string{}, seen: map[string]bool{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	samples := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), " \t")
		switch {
		case text == "":
		case strings.HasPrefix(text, "# TYPE "):
			c.typeLine(line, strings.TrimPrefix(text, "# TYPE "))
		case strings.HasPrefix(text, "#"):
			// HELP and comments pass through.
		default:
			samples++
			c.sampleLine(line, text)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "promcheck: read:", err)
		os.Exit(1)
	}
	c.flushHist(line)
	for name := range c.types {
		if !c.seen[name] {
			c.problems = append(c.problems, fmt.Sprintf("TYPE %s has no samples", name))
		}
	}
	if samples == 0 {
		fmt.Fprintln(os.Stderr, "promcheck: no samples on stdin")
		os.Exit(2)
	}
	if len(c.problems) > 0 {
		for _, p := range c.problems {
			fmt.Fprintln(os.Stderr, "promcheck:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("promcheck: OK — %d metric families, %d samples\n", len(c.types), samples)
}
