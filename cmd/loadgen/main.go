// Command loadgen drives a running distinctd and reports latency
// percentiles against an SLO. It fetches the name universe from /v1/names,
// then fires GET /v1/name/{name} requests in one of two modes:
//
//   - closed loop (default): -workers goroutines, each issuing the next
//     request as soon as the previous answer lands — measures capacity;
//   - open loop (-rate R): requests start on a fixed schedule regardless of
//     how slow the server answers — measures behaviour under a fixed
//     offered load, the way real traffic arrives.
//
// Before the timed load pass it sweeps the name mix twice — "cold" (each
// name computed once, result cache empty) and "warm" (the same sweep again,
// served from cache) — so the cache's effect on p50 is part of every
// report. Server-side cache and coalescing counters are scraped from
// /metrics before and after each pass.
//
// The final line is the SLO verdict:
//
//	SLO PASS: warm p99 18ms <= 250ms, error rate 0.0% <= 1.0%
//
// and the exit code is 0 on pass, 2 on fail — wire it straight into CI.
//
// For overload drills the timed pass can model a population of distinct
// clients (-clients N stamps X-Api-Key: <prefix>-<i> round-robin, exercising
// the server's per-client quotas) and a writer mutating the database
// mid-run (-insert-every D POSTs /debug/bump, exercising
// stale-while-revalidate). The report then carries per-client request/error/
// 429 counts and p99, plus how many responses were served stale or degraded.
//
// Usage:
//
//	loadgen -addr localhost:8080 [-duration 10s] [-workers 8]
//	        [-rate 200]          open loop at 200 req/s instead
//	        [-min-refs 20]       name universe floor (GET /v1/names)
//	        [-skip-sweeps]       go straight to the timed load pass
//	        [-clients N]         distinct client identities (X-Api-Key)
//	        [-client-prefix P]   identity prefix (default "lgc")
//	        [-insert-every D]    bump the DB version every D during the load pass
//	        [-slo-p99 250ms] [-slo-errors 0.01]
//	        [-out report.json]   machine-readable report
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type passReport struct {
	Pass       string         `json:"pass"`
	Mode       string         `json:"mode"`
	Duration   float64        `json:"duration_s"`
	Requests   int            `json:"requests"`
	Errors     int            `json:"errors"`
	ErrorRate  float64        `json:"error_rate"`
	Throughput float64        `json:"throughput_rps"`
	P50MS      float64        `json:"p50_ms"`
	P95MS      float64        `json:"p95_ms"`
	P99MS      float64        `json:"p99_ms"`
	MaxMS      float64        `json:"max_ms"`
	Statuses   map[string]int `json:"statuses"`
	// Stale and Degraded count responses the server marked as served from a
	// previous database version (stale-while-revalidate) or computed on the
	// degraded path — the overload drills gate on these being nonzero.
	Stale    int `json:"stale,omitempty"`
	Degraded int `json:"degraded,omitempty"`
	// Bumps counts the /debug/bump version bumps this pass issued
	// (-insert-every).
	Bumps    int              `json:"bumps,omitempty"`
	Counters map[string]int64 `json:"counter_deltas,omitempty"`
	// Clients breaks the pass down per client identity (-clients); the quota
	// fairness gate reads Server5xx here.
	Clients []clientReport `json:"clients,omitempty"`
	// Slowest lists the pass's slowest requests with the X-Request-IDs
	// loadgen sent — cross-reference them against the server's
	// /debug/requests slow lane.
	Slowest []slowSample `json:"slowest,omitempty"`
}

// clientReport is one client identity's slice of a pass.
type clientReport struct {
	Client       string  `json:"client"`
	Requests     int     `json:"requests"`
	Errors       int     `json:"errors"`
	Server5xx    int     `json:"server_5xx"`
	Throttled429 int     `json:"throttled_429"`
	P99MS        float64 `json:"p99_ms"`
	Stale        int     `json:"stale,omitempty"`
	Degraded     int     `json:"degraded,omitempty"`
}

// slowSample identifies one slow request by the id loadgen stamped on it.
type slowSample struct {
	ID     string  `json:"id"`
	Name   string  `json:"name"`
	MS     float64 `json:"ms"`
	Status int     `json:"status"`
}

type report struct {
	Target   string       `json:"target"`
	Names    int          `json:"names"`
	SLOP99MS float64      `json:"slo_p99_ms"`
	SLOErr   float64      `json:"slo_error_rate"`
	Passes   []passReport `json:"passes"`
	Verdict  string       `json:"verdict"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", "localhost:8080", "distinctd address")
		duration    = flag.Duration("duration", 10*time.Second, "length of each pass")
		workers     = flag.Int("workers", 8, "closed-loop concurrency")
		rate        = flag.Float64("rate", 0, "open-loop request rate per second (0 = closed loop)")
		minRefs     = flag.Int("min-refs", 20, "name universe floor for /v1/names")
		maxNames    = flag.Int("max-names", 64, "cap on the name mix (0 = all)")
		skipSweep   = flag.Bool("skip-sweeps", false, "skip the cold/warm cache sweeps before the load pass")
		seed        = flag.Int64("seed", 1, "name-mix shuffle seed")
		sloP99      = flag.Duration("slo-p99", 250*time.Millisecond, "p99 latency objective (judged on the load pass)")
		sloErr      = flag.Float64("slo-errors", 0.01, "error-rate objective (non-2xx fraction)")
		outPath     = flag.String("out", "", "write the JSON report to this file")
		clients     = flag.Int("clients", 0, "distinct client identities for the load pass (0 = no X-Api-Key header)")
		clientPre   = flag.String("client-prefix", "lgc", "client identity prefix: ids are <prefix>-0..N-1")
		insertEvery = flag.Duration("insert-every", 0, "POST /debug/bump this often during the load pass (0 = never); needs distinctd -admin-bump")
	)
	flag.Parse()
	base := "http://" + *addr
	client := &http.Client{Timeout: 30 * time.Second}

	names, err := fetchNames(client, base, *minRefs)
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return fmt.Errorf("no names with >=%d refs at %s", *minRefs, base)
	}
	rng := rand.New(rand.NewSource(*seed))
	rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	if *maxNames > 0 && len(names) > *maxNames {
		names = names[:*maxNames]
	}
	mode := "closed"
	if *rate > 0 {
		mode = fmt.Sprintf("open@%.0frps", *rate)
	}
	fmt.Printf("loadgen: %s, %d names (min_refs=%d), %s loop, %v per pass\n",
		base, len(names), *minRefs, mode, *duration)

	rep := report{
		Target: base, Names: len(names),
		SLOP99MS: float64(*sloP99) / float64(time.Millisecond),
		SLOErr:   *sloErr,
	}
	runOne := func(label string, f func() passReport) passReport {
		before := scrapeCounters(client, base)
		pr := f()
		pr.Counters = counterDelta(before, scrapeCounters(client, base))
		rep.Passes = append(rep.Passes, pr)
		printPass(pr)
		return pr
	}
	if !*skipSweep {
		// Each sweep touches every name exactly once: the cold sweep measures
		// the engine's compute latency, the warm one the cache's.
		cold := runOne("cold", func() passReport { return runSweep(client, base, "cold", names, *workers) })
		warm := runOne("warm", func() passReport { return runSweep(client, base, "warm", names, *workers) })
		if warm.P50MS > 0 {
			fmt.Printf("cache effect: cold p50 %.2fms / warm p50 %.2fms = %.1fx\n",
				cold.P50MS, warm.P50MS, cold.P50MS/warm.P50MS)
		}
	}
	var ids []string
	for i := 0; i < *clients; i++ {
		ids = append(ids, fmt.Sprintf("%s-%d", *clientPre, i))
	}
	last := runOne("load", func() passReport {
		return runTimed(client, base, "load", names, timedConfig{
			duration: *duration, workers: *workers, rate: *rate, seed: *seed,
			clients: ids, insertEvery: *insertEvery,
		})
	})

	// The verdict judges the timed load pass — steady state, caches warm.
	pass := last.P99MS <= rep.SLOP99MS && last.ErrorRate <= *sloErr
	rep.Verdict = "PASS"
	if !pass {
		rep.Verdict = "FAIL"
	}
	fmt.Printf("SLO %s: %s p99 %.1fms <= %.0fms, error rate %.1f%% <= %.1f%%\n",
		rep.Verdict, last.Pass, last.P99MS, rep.SLOP99MS, last.ErrorRate*100, *sloErr*100)

	if *outPath != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", *outPath)
	}
	if !pass {
		os.Exit(2)
	}
	return nil
}

func fetchNames(client *http.Client, base string, minRefs int) ([]string, error) {
	resp, err := client.Get(fmt.Sprintf("%s/v1/names?min_refs=%d", base, minRefs))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("GET /v1/names: %s: %s", resp.Status, raw)
	}
	var body struct {
		Names []string `json:"names"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Names, nil
}

// scrapeCounters reads the server's counter map from /metrics; nil on any
// failure — counter deltas are a bonus, never a reason to abort a run.
func scrapeCounters(client *http.Client, base string) map[string]int64 {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if json.NewDecoder(resp.Body).Decode(&snap) != nil {
		return nil
	}
	return snap.Counters
}

func counterDelta(before, after map[string]int64) map[string]int64 {
	if after == nil {
		return nil
	}
	delta := make(map[string]int64)
	for name, v := range after {
		if !strings.HasPrefix(name, "serve.") {
			continue
		}
		if d := v - before[name]; d != 0 {
			delta[name] = d
		}
	}
	return delta
}

type sample struct {
	latency  time.Duration
	status   int
	failed   bool
	id       string
	name     string
	client   string
	stale    bool
	degraded bool
}

// envelopeFlags is the slice of a response body loadgen inspects: whether
// the server marked the answer stale (previous-version cache entry, recompute
// in flight) or degraded (reduced path set / brownout).
type envelopeFlags struct {
	Stale    bool `json:"stale"`
	Degraded bool `json:"degraded"`
}

// collector accumulates samples concurrently and folds them into a report.
type collector struct {
	client *http.Client
	base   string
	seq    atomic.Uint64

	mu      sync.Mutex
	samples []sample
}

func (c *collector) shoot(name, client string) { c.shootRetry(name, client, 0) }

// shootRetry issues one lookup, honoring Retry-After on 429/503 up to
// `retries` times — the sweep passes use it so every name lands exactly one
// computed result even when the mix outnumbers the server's compute slots.
// Only the final attempt's latency is recorded; backoff sleep is not server
// latency.
//
// Every attempt carries an X-Request-ID and a W3C traceparent, so the slow
// requests this pass reports can be found by id in the server's
// /debug/requests flight recorder and its access logs.
func (c *collector) shootRetry(name, client string, retries int) {
	seq := c.seq.Add(1)
	id := fmt.Sprintf("lg-%08d", seq)
	var s sample
	for attempt := 0; ; attempt++ {
		req, rerr := http.NewRequest("GET", c.base+"/v1/name/"+url.PathEscape(name), nil)
		if rerr != nil {
			s = sample{failed: true, id: id, name: name, client: client}
			break
		}
		req.Header.Set("X-Request-ID", id)
		req.Header.Set("traceparent", fmt.Sprintf("00-%032x-%016x-01", seq, seq))
		if client != "" {
			req.Header.Set("X-Api-Key", client)
		}
		t0 := time.Now()
		resp, err := c.client.Do(req)
		lat := time.Since(t0)
		s = sample{latency: lat, failed: err != nil, id: id, name: name, client: client}
		if err != nil {
			break
		}
		var flags envelopeFlags
		json.NewDecoder(resp.Body).Decode(&flags)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		s.status = resp.StatusCode
		s.stale, s.degraded = flags.Stale, flags.Degraded
		if attempt >= retries ||
			(s.status != http.StatusTooManyRequests && s.status != http.StatusServiceUnavailable) {
			break
		}
		backoff := time.Second
		if v, err := time.ParseDuration(resp.Header.Get("Retry-After") + "s"); err == nil && v > 0 {
			backoff = v
		}
		time.Sleep(backoff)
	}
	c.mu.Lock()
	c.samples = append(c.samples, s)
	c.mu.Unlock()
}

func (c *collector) report(label, mode string, elapsed time.Duration) passReport {
	pr := passReport{
		Pass: label, Mode: mode, Duration: elapsed.Seconds(),
		Statuses: make(map[string]int),
	}
	lats := make([]time.Duration, 0, len(c.samples))
	perClient := make(map[string]*clientReport)
	clientLats := make(map[string][]time.Duration)
	for _, s := range c.samples {
		pr.Requests++
		var cr *clientReport
		if s.client != "" {
			cr = perClient[s.client]
			if cr == nil {
				cr = &clientReport{Client: s.client}
				perClient[s.client] = cr
			}
			cr.Requests++
		}
		if s.failed {
			pr.Errors++
			pr.Statuses["error"]++
			if cr != nil {
				cr.Errors++
			}
			continue
		}
		pr.Statuses[fmt.Sprint(s.status)]++
		if s.status < 200 || s.status > 299 {
			pr.Errors++
		}
		if s.stale {
			pr.Stale++
		}
		if s.degraded {
			pr.Degraded++
		}
		if cr != nil {
			if s.status < 200 || s.status > 299 {
				cr.Errors++
			}
			if s.status >= 500 {
				cr.Server5xx++
			}
			if s.status == http.StatusTooManyRequests {
				cr.Throttled429++
			}
			if s.stale {
				cr.Stale++
			}
			if s.degraded {
				cr.Degraded++
			}
			clientLats[s.client] = append(clientLats[s.client], s.latency)
		}
		lats = append(lats, s.latency)
	}
	if len(perClient) > 0 {
		ids := make([]string, 0, len(perClient))
		for id := range perClient {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			cr := perClient[id]
			if cl := clientLats[id]; len(cl) > 0 {
				sort.Slice(cl, func(i, j int) bool { return cl[i] < cl[j] })
				cr.P99MS = float64(percentile(cl, 0.99)) / float64(time.Millisecond)
			}
			pr.Clients = append(pr.Clients, *cr)
		}
	}
	if pr.Requests > 0 && elapsed > 0 {
		pr.ErrorRate = float64(pr.Errors) / float64(pr.Requests)
		pr.Throughput = float64(pr.Requests) / elapsed.Seconds()
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		pr.P50MS = ms(percentile(lats, 0.50))
		pr.P95MS = ms(percentile(lats, 0.95))
		pr.P99MS = ms(percentile(lats, 0.99))
		pr.MaxMS = ms(lats[len(lats)-1])
	}
	pr.Slowest = slowest(c.samples, 5)
	return pr
}

// slowest returns the k slowest non-failed samples as id-bearing records.
func slowest(samples []sample, k int) []slowSample {
	ok := make([]sample, 0, len(samples))
	for _, s := range samples {
		if !s.failed {
			ok = append(ok, s)
		}
	}
	sort.Slice(ok, func(i, j int) bool { return ok[i].latency > ok[j].latency })
	if len(ok) > k {
		ok = ok[:k]
	}
	out := make([]slowSample, len(ok))
	for i, s := range ok {
		out[i] = slowSample{
			ID: s.id, Name: s.name,
			MS:     float64(s.latency) / float64(time.Millisecond),
			Status: s.status,
		}
	}
	return out
}

// runSweep requests every name exactly once, fanned over `workers`
// goroutines — one cache generation, no repeats.
func runSweep(client *http.Client, base, label string, names []string, workers int) passReport {
	c := &collector{client: client, base: base}
	t0 := time.Now()
	var wg sync.WaitGroup
	work := make(chan string)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for name := range work {
				c.shootRetry(name, "", 8)
			}
		}()
	}
	for _, name := range names {
		work <- name
	}
	close(work)
	wg.Wait()
	return c.report(label, "sweep", time.Since(t0))
}

// timedConfig parameterizes the timed load pass.
type timedConfig struct {
	duration time.Duration
	workers  int
	rate     float64
	seed     int64
	// clients, when non-empty, are X-Api-Key identities assigned round-robin
	// (per worker in the closed loop, per request in the open loop).
	clients []string
	// insertEvery, when positive, POSTs /debug/bump on that period for the
	// length of the pass — the insert-while-serving drill.
	insertEvery time.Duration
}

func runTimed(client *http.Client, base, label string, names []string, cfg timedConfig) passReport {
	c := &collector{client: client, base: base}
	deadline := time.Now().Add(cfg.duration)
	pick := func(i int) string {
		if len(cfg.clients) == 0 {
			return ""
		}
		return cfg.clients[i%len(cfg.clients)]
	}
	var bumps atomic.Int64
	if cfg.insertEvery > 0 {
		// The writer: bump the database version on a fixed period so the pass
		// crosses version boundaries mid-flight. Stale-while-revalidate is
		// judged by the stale counts this provokes.
		go func() {
			tick := time.NewTicker(cfg.insertEvery)
			defer tick.Stop()
			for time.Now().Before(deadline) {
				<-tick.C
				resp, err := client.Post(base+"/debug/bump", "application/json", nil)
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					bumps.Add(1)
				}
			}
		}()
	}
	var wg sync.WaitGroup
	if cfg.rate > 0 {
		// Open loop: requests start on schedule no matter how the server is
		// doing — queueing delay shows up as latency, as it should.
		interval := time.Duration(float64(time.Second) / cfg.rate)
		rng := rand.New(rand.NewSource(cfg.seed))
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for i := 0; time.Now().Before(deadline); i++ {
			name := names[rng.Intn(len(names))]
			id := pick(i)
			wg.Add(1)
			go func() {
				defer wg.Done()
				c.shoot(name, id)
			}()
			<-tick.C
		}
	} else {
		for w := 0; w < cfg.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
				id := pick(w)
				for time.Now().Before(deadline) {
					c.shoot(names[rng.Intn(len(names))], id)
				}
			}(w)
		}
	}
	wg.Wait()
	mode := "closed"
	if cfg.rate > 0 {
		mode = "open"
	}
	pr := c.report(label, mode, cfg.duration)
	pr.Bumps = int(bumps.Load())
	return pr
}

// percentile reads the q-quantile from an ascending-sorted latency slice
// (nearest-rank).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func printPass(pr passReport) {
	fmt.Printf("pass %-6s %7d req  %6.0f rps  p50 %7.2fms  p95 %7.2fms  p99 %7.2fms  max %7.2fms  errors %d (%.2f%%)\n",
		pr.Pass, pr.Requests, pr.Throughput, pr.P50MS, pr.P95MS, pr.P99MS, pr.MaxMS, pr.Errors, pr.ErrorRate*100)
	if pr.Stale > 0 || pr.Degraded > 0 || pr.Bumps > 0 {
		fmt.Printf("            served: stale=%d degraded=%d bumps=%d\n", pr.Stale, pr.Degraded, pr.Bumps)
	}
	for _, cr := range pr.Clients {
		fmt.Printf("            client %-12s %6d req  p99 %7.2fms  429s %d  5xx %d  stale %d  degraded %d\n",
			cr.Client, cr.Requests, cr.P99MS, cr.Throttled429, cr.Server5xx, cr.Stale, cr.Degraded)
	}
	if len(pr.Counters) > 0 {
		keys := make([]string, 0, len(pr.Counters))
		for k := range pr.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%d", strings.TrimPrefix(k, "serve."), pr.Counters[k])
		}
		fmt.Printf("            server: %s\n", strings.Join(parts, " "))
	}
	if len(pr.Slowest) > 0 {
		parts := make([]string, len(pr.Slowest))
		for i, s := range pr.Slowest {
			parts[i] = fmt.Sprintf("%s %s %.1fms/%d", s.ID, s.Name, s.MS, s.Status)
		}
		fmt.Printf("            slowest: %s\n", strings.Join(parts, "; "))
	}
}
