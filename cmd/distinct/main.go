// Command distinct disambiguates the references to one name in a saved
// world (see cmd/dblpgen): it trains DISTINCT's join-path weights on
// automatically constructed examples, clusters the name's references, and
// prints the groups with their papers — scored against the ground truth
// when the name is one of the world's injected ambiguous names.
//
// Usage:
//
//	distinct -world world.json -name "Wei Wang" [-minsim X] [-unsupervised]
//	         [-dblpxml dblp.xml]   load a real DBLP XML export instead
//	         [-measure combined|resemblance|walk] [-weights]
//	         [-batch N]            disambiguate every name with >= N refs
//	         [-timeout D]          whole-run budget (context deadline)
//	         [-name-timeout D]     per-name budget in -batch (degraded retry,
//	                               then a recorded incident)
//	         [-tune]               auto-tune min-sim on rare-name pairs
//	         [-mergeprofile]       print the merge profile of -name
//	         [-savemodel model.json] [-loadmodel model.json]
//	         [-metrics out.json]   dump the observability snapshot at exit
//	         [-obs addr]           serve /metrics, /debug/vars, pprof live
//	         [-trace out.json]     write a Chrome trace (chrome://tracing)
//	         [-tracetree out.json] write the span tree for cmd/tracereport
//	         [-tracesample N]      pair-provenance sampling period (default 64)
//	         [-v]                  log progress to stderr (structured, span-stamped)
//
// SIGINT/SIGTERM cancel the run's context: in-flight work stops at the next
// chunk boundary, trace and metrics artifacts still flush, a partial batch
// result (with its incident summary) is printed, and the process exits
// nonzero instead of dying mid-write.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"distinct"
	"distinct/internal/dataio"
	"distinct/internal/dblp"
	"distinct/internal/dblpxml"
	"distinct/internal/linkage"
	"distinct/internal/obs/trace"
)

func main() {
	// All artifact flushing (metrics, traces, server shutdown) happens in
	// run's defers, so an error path cannot skip them the way os.Exit would.
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "distinct:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		worldPath    = flag.String("world", "world.json", "world file written by dblpgen")
		xmlPath      = flag.String("dblpxml", "", "load a DBLP XML export instead of a world file (no ground truth)")
		prune        = flag.Int("prune", 3, "with -dblpxml: drop authors with fewer references (paper: authors with <=2 papers removed); 1 disables")
		name         = flag.String("name", "Wei Wang", "name to disambiguate")
		minSim       = flag.Float64("minsim", 0, "clustering threshold (0 = default)")
		unsupervised = flag.Bool("unsupervised", false, "skip SVM weight learning")
		measureName  = flag.String("measure", "combined", "cluster measure: combined, resemblance, walk")
		showWeights  = flag.Bool("weights", false, "print the learned join-path weights")
		trainN       = flag.Int("train", 1000, "training pairs per class")
		seed         = flag.Int64("seed", 1, "training-set sampling seed")
		batch        = flag.Int("batch", 0, "disambiguate every name with at least this many references")
		timeout      = flag.Duration("timeout", 0, "whole-run budget; 0 disables (SIGINT/SIGTERM always cancel)")
		nameTimeout  = flag.Duration("name-timeout", 0, "with -batch: per-name budget (over-budget names degrade, then become incidents); 0 disables")
		tune         = flag.Bool("tune", false, "auto-tune min-sim on synthetic rare-name pairs")
		mergeProfile = flag.Bool("mergeprofile", false, "print the merge profile of -name (helps choose min-sim)")
		explain      = flag.Bool("explain", false, "explain the similarity of the first two references of -name")
		dupNames     = flag.Int("dupnames", 0, "find the top-N differently written names that may denote one object (record linkage)")
		saveModel    = flag.String("savemodel", "", "write the trained weights to this file")
		loadModel    = flag.String("loadmodel", "", "load weights from this file instead of training")
		metricsOut   = flag.String("metrics", "", "write the observability snapshot (JSON) to this file at exit")
		obsAddr      = flag.String("obs", "", "serve live metrics and pprof on this address (e.g. localhost:6060)")
		traceOut     = flag.String("trace", "", "write a Chrome trace-event JSON of the run (chrome://tracing, Perfetto) to this file at exit")
		traceTree    = flag.String("tracetree", "", "write the run's span tree (JSON, input of cmd/tracereport) to this file at exit")
		traceSample  = flag.Int("tracesample", 64, "with -trace/-tracetree: record an explanation for every Nth reference pair (0 disables pair provenance)")
		verbose      = flag.Bool("v", false, "log progress to stderr (structured, span-stamped)")
	)
	flag.Parse()

	// The run context: SIGINT/SIGTERM cancel it, -timeout bounds it. Every
	// pipeline call below goes through the ctx APIs, so cancellation stops
	// work at the next chunk boundary and unwinds through the deferred
	// artifact writers.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Progress goes through a structured logger, off by default; results
	// stay on stdout. With -v each record carries the id of the trace span
	// it belongs to (span=-1 when tracing is off).
	var logW *os.File
	if *verbose {
		logW = os.Stderr
	}
	lg := trace.NewLogger(logW, slog.LevelInfo)

	// Observability is opt-in: either flag creates the registry the whole
	// pipeline reports into; neither means the nil no-cost registry.
	var reg *distinct.Registry
	if *metricsOut != "" || *obsAddr != "" {
		reg = distinct.NewMetrics()
	}
	if *obsAddr != "" {
		srv, err := distinct.ServeMetrics(*obsAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("observability server on http://%s (/metrics, /debug/vars, /debug/pprof)\n", srv.Addr())
	}
	if *metricsOut != "" {
		defer func() {
			if err := reg.WriteFile(*metricsOut); err != nil {
				fmt.Fprintln(os.Stderr, "distinct: writing metrics:", err)
				return
			}
			lg.Info("metrics snapshot written", "path", *metricsOut)
		}()
	}

	// Tracing is likewise opt-in; the trace's exports are written at exit,
	// after the deferred root-span Finish — including when the run was
	// cancelled, so an aborted run still leaves inspectable artifacts.
	var tr *distinct.Trace
	if *traceOut != "" || *traceTree != "" {
		tr = distinct.NewTrace(*traceSample)
		lg = trace.WithSpan(lg, tr.Root())
		defer func() {
			tr.Finish()
			if *traceOut != "" {
				if err := tr.WriteChromeFile(*traceOut); err != nil {
					fmt.Fprintln(os.Stderr, "distinct: writing trace:", err)
				} else {
					lg.Info("chrome trace written", "path", *traceOut)
				}
			}
			if *traceTree != "" {
				if err := tr.WriteFile(*traceTree); err != nil {
					fmt.Fprintln(os.Stderr, "distinct: writing trace tree:", err)
				} else {
					lg.Info("trace tree written", "path", *traceTree)
				}
			}
		}()
	}

	var measure distinct.Measure
	switch *measureName {
	case "combined":
		measure = distinct.Combined
	case "resemblance":
		measure = distinct.ResemblanceOnly
	case "walk":
		measure = distinct.RandomWalkOnly
	default:
		return fmt.Errorf("unknown measure %q", *measureName)
	}

	var (
		db        *distinct.Database
		ambiguous []string
		world     *dblp.World
	)
	if *xmlPath != "" {
		f, err := os.Open(*xmlPath)
		if err != nil {
			return err
		}
		loaded, stats, err := dblpxml.Load(f, dblpxml.Options{})
		f.Close()
		if err != nil {
			return err
		}
		lg.Info("loaded DBLP XML", "path", *xmlPath, "records", stats.Records,
			"authors", stats.Authors, "refs", stats.Refs, "skipped", stats.Skipped)
		if *prune > 1 {
			pruned, ps, err := dblpxml.Prune(loaded, *prune)
			if err != nil {
				return err
			}
			loaded = pruned
			lg.Info("pruned sparse authors", "min_refs", *prune,
				"authors_kept", ps.AuthorsKept, "refs_kept", ps.RefsKept)
		}
		db = loaded
	} else {
		w, err := dataio.LoadWorldFile(*worldPath)
		if err != nil {
			return err
		}
		world = w
		db = w.DB
		ambiguous = w.AmbiguousNames()
	}
	eng, err := distinct.OpenCtx(ctx, db, distinct.Config{
		RefRelation:  "Publish",
		RefAttr:      "author",
		SkipExpand:   []string{"Publications.title"},
		Unsupervised: *unsupervised,
		Measure:      measure,
		MinSim:       *minSim,
		Train: distinct.TrainOptions{
			NumPositive: *trainN, NumNegative: *trainN,
			Exclude: ambiguous, Seed: *seed,
		},
		Metrics: reg,
		Trace:   tr,
	})
	if err != nil {
		return err
	}

	switch {
	case *loadModel != "":
		f, err := os.Open(*loadModel)
		if err != nil {
			return err
		}
		m, err := distinct.LoadModel(f)
		f.Close()
		if err != nil {
			return err
		}
		if err := eng.ApplyModel(m); err != nil {
			return err
		}
		lg.Info("model loaded", "path", *loadModel, "paths", len(m.Paths))
	case !*unsupervised:
		rep, err := eng.TrainCtx(ctx)
		if err != nil {
			return err
		}
		lg.Info("trained", "positive", rep.NumPositive, "negative", rep.NumNegative,
			"rare_names", rep.NumRareNames, "duration", rep.Timings.TotalTrain)
	}
	if *showWeights {
		paths := eng.Paths()
		resemW, walkW := eng.Weights()
		fmt.Println("join-path weights (resemblance / walk):")
		for i, p := range paths {
			if resemW[i] == 0 && walkW[i] == 0 {
				continue
			}
			fmt.Printf("  %-100s %.3f / %.3f\n", p.Describe(eng.DB().Schema), resemW[i], walkW[i])
		}
	}
	if *saveModel != "" {
		f, err := os.Create(*saveModel)
		if err != nil {
			return err
		}
		if err := eng.SaveModel(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		lg.Info("model written", "path", *saveModel)
	}
	if *tune {
		res, err := eng.TuneMinSim(nil, 50, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("tuned min-sim = %g (avg f-measure %.3f over %d synthetic cases)\n",
			res.MinSim, res.F1, res.Cases)
	}
	if *dupNames > 0 {
		pairs, err := linkage.FindDuplicateNames(db, "Publish", "author", linkage.Options{
			MinStringSim: 0.55,
			MaxPairs:     *dupNames,
			Verify:       func(a, b string) float64 { return eng.Affinity(a, b) },
		})
		if err != nil {
			return err
		}
		fmt.Printf("\ntop %d candidate duplicate names (string join + relational verification):\n", len(pairs))
		fmt.Printf("%-26s %-26s %10s %12s\n", "name A", "name B", "string", "relational")
		for _, p := range pairs {
			fmt.Printf("%-26s %-26s %10.3f %12.5f\n", p.A, p.B, p.StringSim, p.RelationalSim)
		}
		return nil
	}

	if *batch > 0 {
		res, err := eng.DisambiguateAllCtx(ctx, distinct.BatchOptions{
			MinRefs:     *batch,
			NameTimeout: *nameTimeout,
		})
		if res != nil {
			fmt.Printf("\nbatch pass: %d names with >=%d refs examined, %d split\n",
				res.NamesExamined, *batch, len(res.Split))
			for _, sp := range res.Split {
				sizes := make([]int, len(sp.Groups))
				for i, g := range sp.Groups {
					sizes[i] = len(g)
				}
				fmt.Printf("  %-26s -> %d groups %v\n", sp.Name, len(sp.Groups), sizes)
			}
			printIncidents(res.Incidents)
		}
		if err != nil {
			// Cancelled or timed out mid-batch: the partial result above is
			// everything that completed; exit nonzero.
			return err
		}
		return nil
	}

	if *mergeProfile {
		refs := eng.Refs(*name)
		fmt.Printf("\nmerge profile of %q (%d refs; merges in order, similarity and sizes):\n", *name, len(refs))
		for i, st := range eng.MergeProfile(refs) {
			fmt.Printf("  %3d  sim=%-10.6f  %d + %d\n", i+1, st.Sim, st.SizeA, st.SizeB)
		}
	}

	if *explain {
		refs := eng.Refs(*name)
		if len(refs) >= 2 {
			fmt.Printf("\n%s", eng.Explain(refs[0], refs[1]).Format(eng.DB().Schema))
		}
	}

	groups, err := eng.DisambiguateCtx(ctx, *name)
	if err != nil {
		return err
	}
	fmt.Printf("\n%q: %d references in %d groups\n", *name, len(eng.Refs(*name)), len(groups))
	for i, g := range groups {
		fmt.Printf("group %d (%d refs):\n", i+1, len(g))
		for _, r := range g {
			paper := eng.DB().Tuple(r).Val("paper-key")
			pt := eng.DB().LookupKey("Publications", paper)
			title := ""
			if pt != distinct.InvalidTuple {
				title = eng.DB().Tuple(pt).Val("title")
			}
			fmt.Printf("  %-10s %s\n", paper, title)
		}
	}

	// Score against ground truth when available.
	if world == nil {
		return nil
	}
	for _, amb := range world.AmbiguousNames() {
		if amb != *name {
			continue
		}
		var gold [][]distinct.TupleID
		for _, c := range world.GoldClusters(*name) {
			gold = append(gold, eng.MapRefs(c))
		}
		m, err := distinct.Score(groups, gold)
		if err != nil {
			return err
		}
		fmt.Printf("\nground truth: %d authors; %s\n", len(gold), m)
	}
	return nil
}

// printIncidents renders a batch's incident summary: which names could not
// be fully processed, at which stage, why, and how long they ran.
func printIncidents(incidents []distinct.Incident) {
	if len(incidents) == 0 {
		return
	}
	fmt.Printf("\n%d incident(s):\n", len(incidents))
	fmt.Printf("  %-26s %-14s %-12s %10s  %s\n", "name", "stage", "reason", "elapsed", "error")
	for _, inc := range incidents {
		stage := inc.Stage
		if stage == "" {
			stage = "-"
		}
		fmt.Printf("  %-26s %-14s %-12s %10s  %s\n",
			inc.Name, stage, inc.Reason, inc.Elapsed.Round(time.Millisecond), inc.Err)
	}
}
