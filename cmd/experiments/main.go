// Command experiments regenerates the evaluation of the DISTINCT paper
// (Yin, Han, Yu; ICDE 2007) on a generated DBLP-like world: Tables 1 and 2,
// Figures 4 and 5, the training timing, and the extra ablation comparison.
//
// Usage:
//
//	experiments [-all] [-table1] [-table2] [-figure4] [-figure5] [-timing]
//	            [-ablation] [-name "Wei Wang"] [-dot out.dot]
//	            [-seed N] [-communities N] [-authors N] [-minsim X]
//	            [-timeout D] [-name-timeout D]
//	            [-metrics out.json] [-obs addr]
//	            [-trace out.json] [-tracetree out.json] [-tracesample N] [-v]
//
// With no experiment flags, -all is assumed.
//
// SIGINT/SIGTERM cancel the run's context: in-flight pipeline work stops at
// the next chunk boundary, trace and metrics artifacts still flush, and the
// process exits nonzero instead of dying mid-write.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"distinct/internal/dblp"
	"distinct/internal/experiments"
	"distinct/internal/music"
	"distinct/internal/obs"
	"distinct/internal/obs/trace"
)

func main() {
	// Artifact flushing (metrics, traces, server shutdown) happens in run's
	// defers, so an error path cannot skip them the way os.Exit would.
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		all     = flag.Bool("all", false, "run every experiment")
		table1  = flag.Bool("table1", false, "print Table 1 (the ambiguous-name dataset)")
		table2  = flag.Bool("table2", false, "print Table 2 (DISTINCT accuracy per name)")
		figure4 = flag.Bool("figure4", false, "print Figure 4 (six-variant comparison)")
		figure5 = flag.Bool("figure5", false, "print Figure 5 (reference groups of one name)")
		timing  = flag.Bool("timing", false, "print training timing (the paper's 62.1 s figure)")
		ablate  = flag.Bool("ablation", false, "print the cluster-measure ablation (beyond the paper)")
		scaling = flag.Bool("scaling", false, "print the scaling curve (beyond the paper)")
		noise   = flag.Bool("noise", false, "print the noise-sensitivity curve (beyond the paper)")
		musicF  = flag.Bool("music", false, "print the cross-domain music-catalog evaluation (beyond the paper)")
		tsize   = flag.Bool("trainsize", false, "print the training-set size sensitivity curve (beyond the paper)")
		seedsF  = flag.Bool("seeds", false, "print the seed-robustness sweep (beyond the paper)")
		citesF  = flag.Bool("citations", false, "print the citation-linkage experiment (beyond the paper)")
		expandF = flag.Bool("expansion", false, "print the attribute-expansion ablation (Section 2.1)")

		name    = flag.String("name", "Wei Wang", "name for -figure5")
		dotPath = flag.String("dot", "", "also write -figure5 output as Graphviz DOT to this file")

		seed    = flag.Int64("seed", 1, "world generation seed")
		comms   = flag.Int("communities", 0, "override number of research communities")
		authors = flag.Int("authors", 0, "override authors per community")
		minSim  = flag.Float64("minsim", 0, "override DISTINCT's min-sim threshold")
		trainN  = flag.Int("train", 0, "override training pairs per class (paper: 1000)")
		csvDir  = flag.String("csv", "", "also write each experiment's data as CSV into this directory")

		runTimeout  = flag.Duration("timeout", 0, "bound the whole run (e.g. 10m); expiry cancels in-flight work and exits nonzero")
		nameTimeout = flag.Duration("name-timeout", 0, "per-name budget for similarity computation (e.g. 30s)")

		metricsOut = flag.String("metrics", "", "write the observability snapshot (JSON) to this file at exit")
		obsAddr    = flag.String("obs", "", "serve live metrics and pprof on this address (e.g. localhost:6060)")

		traceOut    = flag.String("trace", "", "write a Chrome trace-event JSON of the run (chrome://tracing, Perfetto) to this file at exit")
		traceTree   = flag.String("tracetree", "", "write the run's span tree (JSON, input of cmd/tracereport) to this file at exit")
		traceSample = flag.Int("tracesample", 64, "with -trace/-tracetree: record an explanation for every Nth reference pair (0 disables pair provenance)")
		verbose     = flag.Bool("v", false, "log progress to stderr (structured, span-stamped)")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the run context; pipeline stages observe it at
	// chunk boundaries, so the deferred artifact writers below still run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *runTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *runTimeout)
		defer cancel()
	}

	// Progress goes through a structured logger, off by default; the tables
	// and figures stay on stdout.
	var logW *os.File
	if *verbose {
		logW = os.Stderr
	}
	lg := trace.NewLogger(logW, slog.LevelInfo)

	var reg *obs.Registry
	if *metricsOut != "" || *obsAddr != "" {
		reg = obs.NewRegistry()
	}
	if *obsAddr != "" {
		srv, err := obs.Serve(*obsAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("observability server on http://%s (/metrics, /debug/vars, /debug/pprof)\n", srv.Addr())
	}
	if *metricsOut != "" {
		defer func() {
			if err := reg.WriteFile(*metricsOut); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: writing metrics:", err)
				return
			}
			lg.Info("metrics snapshot written", "path", *metricsOut)
		}()
	}

	// Tracing is likewise opt-in; exports are written at exit, after the
	// deferred root-span Finish.
	var tr *trace.Trace
	if *traceOut != "" || *traceTree != "" {
		tr = trace.New(trace.Options{SamplePairEvery: *traceSample})
		lg = trace.WithSpan(lg, tr.Root())
		defer func() {
			tr.Finish()
			if *traceOut != "" {
				if err := tr.WriteChromeFile(*traceOut); err != nil {
					fmt.Fprintln(os.Stderr, "experiments: writing trace:", err)
				} else {
					lg.Info("chrome trace written", "path", *traceOut)
				}
			}
			if *traceTree != "" {
				if err := tr.WriteFile(*traceTree); err != nil {
					fmt.Fprintln(os.Stderr, "experiments: writing trace tree:", err)
				} else {
					lg.Info("trace tree written", "path", *traceTree)
				}
			}
		}()
	}

	if !*table1 && !*table2 && !*figure4 && !*figure5 && !*timing && !*ablate && !*scaling && !*noise && !*musicF && !*tsize && !*seedsF && !*citesF && !*expandF {
		*all = true
	}
	if *all {
		*table1, *table2, *figure4, *figure5, *timing, *ablate = true, true, true, true, true, true
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	world := dblp.DefaultConfig()
	world.Seed = *seed
	if *comms > 0 {
		world.Communities = *comms
	}
	if *authors > 0 {
		world.AuthorsPerCommunity = *authors
	}
	opts := experiments.Options{
		World: world, MinSim: *minSim, Seed: *seed, Obs: reg, Trace: tr,
		Ctx: ctx, NameTimeout: *nameTimeout,
	}
	if *trainN > 0 {
		opts.TrainPositive, opts.TrainNegative = *trainN, *trainN
	}

	lg.Info("generating world", "seed", *seed)
	h, err := experiments.NewHarness(opts)
	if err != nil {
		return err
	}
	lg.Info("world generated",
		"identities", len(h.World.Identities),
		"papers", h.World.NumPapers(),
		"references", h.World.NumReferences())

	if *table1 {
		fmt.Println("=== Table 1: names corresponding to multiple authors ===")
		rows := h.Table1()
		fmt.Println(experiments.FormatTable1(rows))
		if err := writeCSV(*csvDir, "table1.csv", func(w io.Writer) error {
			return experiments.WriteTable1CSV(w, rows)
		}); err != nil {
			return err
		}
	}
	if *timing {
		fmt.Println("=== Section 5 timing: training pipeline ===")
		tm, err := h.Timing()
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTiming(tm))
	}
	if *table2 {
		fmt.Println("=== Table 2: accuracy for distinguishing references ===")
		res, err := h.Table2()
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable2(res))
		if err := writeCSV(*csvDir, "table2.csv", func(w io.Writer) error {
			return experiments.WriteTable2CSV(w, res)
		}); err != nil {
			return err
		}
	}
	if *figure4 {
		fmt.Println("=== Figure 4: accuracy and f-measure of six variants ===")
		rows, err := h.Figure4()
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFigure4(rows))
		if err := writeCSV(*csvDir, "figure4.csv", func(w io.Writer) error {
			return experiments.WriteFigure4CSV(w, rows)
		}); err != nil {
			return err
		}
	}
	if *ablate {
		fmt.Println("=== Ablation: cluster-measure design choices (beyond the paper) ===")
		rows, err := h.Ablation()
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFigure4(rows))
		if err := writeCSV(*csvDir, "ablation.csv", func(w io.Writer) error {
			return experiments.WriteFigure4CSV(w, rows)
		}); err != nil {
			return err
		}
	}
	if *scaling {
		fmt.Println("=== Scaling: pipeline cost vs database size (beyond the paper) ===")
		rows, err := h.Scaling(nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatScaling(rows))
		if err := writeCSV(*csvDir, "scaling.csv", func(w io.Writer) error {
			return experiments.WriteScalingCSV(w, rows)
		}); err != nil {
			return err
		}
	}
	if *noise {
		fmt.Println("=== Noise sensitivity: quality vs cross-community collaboration (beyond the paper) ===")
		rows, err := h.NoiseSensitivity(nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatNoise(rows))
		if err := writeCSV(*csvDir, "noise.csv", func(w io.Writer) error {
			return experiments.WriteNoiseCSV(w, rows)
		}); err != nil {
			return err
		}
	}
	if *expandF {
		fmt.Println("=== Attribute-expansion ablation (Section 2.1) ===")
		rows, err := h.ExpansionAblation()
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatExpansion(rows))
	}
	if *citesF {
		fmt.Println("=== Citation linkage: quality vs citation density (beyond the paper) ===")
		rows, err := h.CitationLinkage(nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatCitations(rows))
	}
	if *seedsF {
		fmt.Println("=== Seed robustness: Table 2 averages across generated worlds (beyond the paper) ===")
		sum, err := h.SeedSweep(nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatSeeds(sum))
		if err := writeCSV(*csvDir, "seeds.csv", func(w io.Writer) error {
			return experiments.WriteSeedsCSV(w, sum)
		}); err != nil {
			return err
		}
	}
	if *tsize {
		fmt.Println("=== Training-set size sensitivity (beyond the paper) ===")
		rows, err := h.TrainSizeSensitivity(nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTrainSize(rows))
		if err := writeCSV(*csvDir, "trainsize.csv", func(w io.Writer) error {
			return experiments.WriteTrainSizeCSV(w, rows)
		}); err != nil {
			return err
		}
	}
	if *musicF {
		fmt.Println("=== Cross-domain: songs sharing a title, AllMusic-style (beyond the paper) ===")
		mres, err := experiments.MusicEvaluation(music.DefaultConfig(), *seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatMusic(mres))
	}
	if *figure5 {
		fmt.Printf("=== Figure 5: groups of references of %s ===\n", *name)
		res, err := h.Figure5(*name)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFigure5(res))
		if *dotPath != "" {
			if err := os.WriteFile(*dotPath, []byte(experiments.DOTFigure5(res)), 0o644); err != nil {
				return err
			}
			fmt.Printf("DOT written to %s\n", *dotPath)
		}
	}
	return nil
}

// writeCSV writes one experiment's CSV into dir, if a dir was requested.
func writeCSV(dir, name string, write func(io.Writer) error) error {
	if dir == "" {
		return nil
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("CSV written to %s\n\n", path)
	return nil
}
