// Benchmarks of the cross-domain evaluation and the DBLP preprocessing.
package distinct_test

import (
	"strings"
	"testing"

	"distinct/internal/dblpxml"
	"distinct/internal/experiments"
	"distinct/internal/music"
)

// BenchmarkMusicCrossDomain runs the full self-supervised pipeline on the
// music catalog (the paper's AllMusic motivation): generate, train on rare
// titles, tune min-sim label-free, evaluate the shared titles.
func BenchmarkMusicCrossDomain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.MusicEvaluation(music.DefaultConfig(), 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Average.F1, "f-measure")
	}
}

// BenchmarkPrune measures the paper's preprocessing (dropping low-degree
// authors with cascading orphan removal) on a synthetic XML load.
func BenchmarkPrune(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<dblp>\n")
	for i := 0; i < 3000; i++ {
		sb.WriteString("<inproceedings key=\"conf/x/p")
		sb.WriteString(itoa(i))
		sb.WriteString("\"><author>Common ")
		sb.WriteString(itoa(i % 200))
		sb.WriteString("</author><author>Rare ")
		sb.WriteString(itoa(i)) // one-paper author on every record
		sb.WriteString("</author><title>T.</title><booktitle>V")
		sb.WriteString(itoa(i % 11))
		sb.WriteString("</booktitle><year>2000</year></inproceedings>\n")
	}
	sb.WriteString("</dblp>\n")
	db, _, err := dblpxml.Load(strings.NewReader(sb.String()), dblpxml.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := dblpxml.Prune(db, 3)
		if err != nil {
			b.Fatal(err)
		}
		if stats.AuthorsDropped == 0 {
			b.Fatal("nothing pruned")
		}
	}
}
